#include "check/dataflow.hh"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "check/contracts.hh"

namespace ot::check {

namespace {

const std::string &
at(const std::vector<Token> &toks, std::size_t i)
{
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
}

bool
isIdent(const std::vector<Token> &toks, std::size_t i)
{
    return i < toks.size() && toks[i].kind == Token::Kind::Ident;
}

bool
isPunct(const std::vector<Token> &toks, std::size_t i, const char *s)
{
    return i < toks.size() && toks[i].kind == Token::Kind::Punct &&
           toks[i].text == s;
}

/** Forward scan: index of the closer matching the opener at `open`. */
std::size_t
matchForward(const std::vector<Token> &toks, std::size_t open,
             const char *opener, const char *closer)
{
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (isPunct(toks, j, opener))
            ++depth;
        else if (isPunct(toks, j, closer) && --depth == 0)
            return j;
    }
    return toks.empty() ? 0 : toks.size() - 1;
}

/** Identifiers that are language keywords, not names. */
bool
isKeywordIdent(const std::string &t)
{
    static const std::set<std::string> kw = {
        "if",       "else",     "for",      "while",    "do",
        "return",   "switch",   "case",     "default",  "break",
        "continue", "goto",     "try",      "catch",    "throw",
        "new",      "delete",   "sizeof",   "alignof",  "decltype",
        "typeid",   "const",    "constexpr", "static",  "auto",
        "using",    "typename", "template", "operator", "this",
        "co_return", "co_await", "co_yield", "static_cast",
        "const_cast", "reinterpret_cast", "dynamic_cast", "noexcept",
        "true",     "false",    "nullptr",  "assert",
    };
    return kw.count(t) != 0;
}

// ---------------------------------------------------------------------
// determinism-taint
// ---------------------------------------------------------------------

/** Per-file line extents covered by well-formed allow(determinism) /
 *  allow(determinism-taint) markers — raw-source sanctioning for the
 *  taint source scan (prng.hh's two sanctioned call sites). */
std::vector<std::pair<int, int>>
determinismAllowExtents(const FileContext &ctx)
{
    std::vector<std::pair<int, int>> spans;
    for (const Allow &a : ctx.lexed.allows) {
        if (a.justification.empty())
            continue;
        if (a.rule != "determinism" && a.rule != "determinism-taint")
            continue;
        spans.push_back(allowExtent(ctx.lexed.tokens, a.line));
    }
    return spans;
}

bool
lineSanctioned(const std::vector<std::pair<int, int>> &spans, int line)
{
    for (const auto &s : spans)
        if (line >= s.first && line <= s.second)
            return true;
    return false;
}

struct TaintNode
{
    int file = -1;
    const FuncDef *def = nullptr;
    bool tainted = false;
    std::string chain; ///< "raw() → splitmix64 at src/x.cc:5"
};

struct TaintGraph
{
    std::vector<TaintNode> nodes;
    std::map<std::string, std::vector<int>> byName;
    /** Per node: names it references without calling (function
     *  pointers / kernel tables), with the reference line. */
    std::vector<std::vector<std::pair<std::string, int>>> addrRefs;
};

/** First banned identifier used raw in the definition's body, outside
 *  any sanctioned extent; "" when clean. */
std::string
taintSource(const FileContext &ctx, const FuncDef &def,
            const std::vector<std::pair<int, int>> &sanctioned)
{
    const auto &toks = ctx.lexed.tokens;
    for (std::size_t j = def.bodyFirst;
         j <= def.bodyLast && j < toks.size(); ++j) {
        if (toks[j].kind != Token::Kind::Ident)
            continue;
        for (const DeterminismBan &ban : determinismBans()) {
            if (toks[j].text != ban.name)
                continue;
            if (ban.callOnly &&
                !(at(toks, j + 1) == "(" && freeCallContext(toks, j)))
                continue;
            if (lineSanctioned(sanctioned, toks[j].line))
                continue;
            return std::string(ban.name) + " at " + ctx.path + ":" +
                   std::to_string(toks[j].line);
        }
    }
    return "";
}

/** Names a body references in non-call position that resolve to
 *  known definitions: the function-pointer / kernel-table edges. */
std::vector<std::pair<std::string, int>>
addressReferences(const FileContext &ctx, const FuncDef &def,
                  const std::map<std::string, std::vector<int>> &byName)
{
    std::vector<std::pair<std::string, int>> refs;
    const auto &toks = ctx.lexed.tokens;
    for (std::size_t j = def.bodyFirst;
         j <= def.bodyLast && j < toks.size(); ++j) {
        if (toks[j].kind != Token::Kind::Ident)
            continue;
        if (byName.find(toks[j].text) == byName.end())
            continue;
        if (at(toks, j + 1) == "(")
            continue; // a call; the call graph covers it
        const std::string &prev = at(toks, j - 1);
        if (prev == "." || prev == "->")
            continue; // member access, someone else's field
        refs.push_back({toks[j].text, toks[j].line});
    }
    return refs;
}

TaintGraph
buildTaintGraph(const std::vector<FileContext> &ctxs,
                std::size_t *rounds)
{
    TaintGraph g;
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        if (allowedIncludes(ctxs[i].layer).empty())
            continue; // src/-layer definitions only
        for (const FuncDef &f : ctxs[i].parsed.funcs) {
            if (f.name.empty())
                continue;
            TaintNode n;
            n.file = static_cast<int>(i);
            n.def = &f;
            g.byName[f.name].push_back(
                static_cast<int>(g.nodes.size()));
            g.nodes.push_back(std::move(n));
        }
    }

    std::vector<std::vector<std::pair<int, int>>> sanctioned(
        ctxs.size());
    for (std::size_t i = 0; i < ctxs.size(); ++i)
        sanctioned[i] = determinismAllowExtents(ctxs[i]);

    g.addrRefs.resize(g.nodes.size());
    for (std::size_t k = 0; k < g.nodes.size(); ++k) {
        TaintNode &n = g.nodes[k];
        const FileContext &ctx = ctxs[n.file];
        n.chain = taintSource(ctx, *n.def, sanctioned[n.file]);
        n.tainted = !n.chain.empty();
        g.addrRefs[k] = addressReferences(ctx, *n.def, g.byName);
    }

    // Monotone propagation: a clean node taints when some call or
    // address reference resolves to a non-empty, fully tainted
    // candidate set.
    std::size_t sweeps = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        ++sweeps;
        for (std::size_t k = 0; k < g.nodes.size(); ++k) {
            TaintNode &n = g.nodes[k];
            if (n.tainted)
                continue;
            auto viaName = [&](const std::string &name) -> bool {
                auto it = g.byName.find(name);
                if (it == g.byName.end())
                    return false;
                const TaintNode *witness = nullptr;
                for (int c : it->second) {
                    if (!g.nodes[c].tainted)
                        return false;
                    if (!witness)
                        witness = &g.nodes[c];
                }
                if (!witness)
                    return false;
                n.tainted = true;
                n.chain = name + "() → " + witness->chain;
                return true;
            };
            for (const CallSite &c : n.def->calls)
                if (viaName(c.name)) {
                    changed = true;
                    break;
                }
            if (n.tainted)
                continue;
            for (const auto &r : g.addrRefs[k])
                if (viaName(r.first)) {
                    changed = true;
                    break;
                }
        }
    }
    if (rounds)
        *rounds = sweeps;
    return g;
}

void
emitTaint(std::vector<Diagnostic> &out, const FileContext &ctx,
          int line, const std::string &what, const std::string &name,
          const std::string &chain)
{
    Diagnostic d;
    d.file = ctx.path;
    d.line = line;
    d.rule = "determinism-taint";
    d.message = what + " '" + name +
                "' reaches a nondeterminism source outside the "
                "determinism scope: " +
                name + "() → " + chain;
    d.hint = "draw through ot::sim::Rng / ot::scenario::StreamRng, "
             "or move the wrapper into a lane-reachable layer where "
             "the flat determinism rule audits it";
    out.push_back(std::move(d));
}

} // namespace

void
runDeterminismTaint(const std::vector<FileContext> &ctxs,
                    std::vector<Diagnostic> &out, std::size_t *rounds)
{
    TaintGraph g = buildTaintGraph(ctxs, rounds);

    /** All candidates tainted AND all defined out of scope? */
    auto boundary = [&](const std::string &name)
        -> const TaintNode * {
        auto it = g.byName.find(name);
        if (it == g.byName.end())
            return nullptr;
        const TaintNode *witness = nullptr;
        for (int c : it->second) {
            const TaintNode &n = g.nodes[c];
            if (!n.tainted)
                return nullptr;
            if (inDeterminismScope(ctxs[n.file].layer))
                return nullptr; // flat rule owns in-scope sources
            if (!witness)
                witness = &n;
        }
        return witness;
    };

    for (const FileContext &ctx : ctxs) {
        if (!inDeterminismScope(ctx.layer))
            continue;
        std::set<std::pair<int, std::string>> seen;
        for (const FuncDef &f : ctx.parsed.funcs) {
            for (const CallSite &c : f.calls) {
                const TaintNode *w = boundary(c.name);
                if (!w || !seen.insert({c.line, c.name}).second)
                    continue;
                emitTaint(out, ctx, c.line, "call to", c.name,
                          w->chain);
            }
            const auto &toks = ctx.lexed.tokens;
            for (std::size_t j = f.bodyFirst;
                 j <= f.bodyLast && j < toks.size(); ++j) {
                if (toks[j].kind != Token::Kind::Ident)
                    continue;
                if (at(toks, j + 1) == "(")
                    continue;
                const std::string &prev = at(toks, j - 1);
                if (prev == "." || prev == "->")
                    continue;
                const TaintNode *w = boundary(toks[j].text);
                if (!w ||
                    !seen.insert({toks[j].line, toks[j].text}).second)
                    continue;
                emitTaint(out, ctx, toks[j].line, "reference to",
                          toks[j].text, w->chain);
            }
        }
    }
}

// ---------------------------------------------------------------------
// lane-safety
// ---------------------------------------------------------------------

namespace {

/** Container methods that mutate the receiver. */
bool
isMutatingMethod(const std::string &t)
{
    static const std::set<std::string> m = {
        "push_back",  "emplace_back",  "pop_back", "push_front",
        "emplace_front", "pop_front",  "insert",   "emplace",
        "erase",      "clear",         "resize",   "assign",
        "append",     "reserve",       "swap",
    };
    return m.count(t) != 0;
}

/** One recorded mutation of a by-reference parameter. */
struct ParamMutation
{
    std::set<std::size_t> idxParams; ///< empty ⇒ unconditional write
    std::string where; ///< " at file:line" (+ " via g()" per hop)
    int line = 0; ///< line in the summarized function's own file
};

struct MutSummary
{
    std::vector<std::string> paramNames;
    std::vector<bool> byRef; ///< non-const reference or pointer
    std::map<std::size_t, std::vector<ParamMutation>> mutations;
};

/** Split the token range (open..close exclusive) at top-level commas;
 *  returns [begin, end) index pairs. */
std::vector<std::pair<std::size_t, std::size_t>>
splitArgs(const std::vector<Token> &toks, std::size_t open,
          std::size_t close)
{
    std::vector<std::pair<std::size_t, std::size_t>> parts;
    int depth = 0;
    std::size_t start = open + 1;
    for (std::size_t j = open + 1; j < close; ++j) {
        const std::string &t = toks[j].text;
        if (toks[j].kind == Token::Kind::Punct) {
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            else if (t == "," && depth == 0) {
                parts.push_back({start, j});
                start = j + 1;
            }
        }
    }
    if (start < close || !parts.empty() || close > open + 1)
        parts.push_back({start, close});
    return parts;
}

/** Parse the parameter list at `paramOpen` into names and by-ref
 *  flags.  Defaulted parameters are truncated at their `=`. */
void
parseParams(const std::vector<Token> &toks, std::size_t paramOpen,
            std::vector<std::string> &names, std::vector<bool> &byRef)
{
    names.clear();
    byRef.clear();
    if (paramOpen == std::string::npos ||
        !isPunct(toks, paramOpen, "("))
        return;
    std::size_t close = matchForward(toks, paramOpen, "(", ")");
    for (const auto &part : splitArgs(toks, paramOpen, close)) {
        std::size_t limit = part.second;
        bool isConst = false, ref = false;
        std::string name;
        for (std::size_t j = part.first; j < limit; ++j) {
            const std::string &t = toks[j].text;
            if (t == "=") {
                break; // default value; the name came before it
            }
            if (toks[j].kind == Token::Kind::Ident) {
                if (t == "const")
                    isConst = true;
                else if (!isKeywordIdent(t))
                    name = t;
            } else if (t == "&" || t == "*") {
                ref = true;
            }
        }
        if (name.empty())
            continue; // unnamed or `void`
        names.push_back(name);
        byRef.push_back(ref && !isConst);
    }
}

/** A path through fields/subscripts starting at a root identifier. */
struct PathInfo
{
    std::string root;
    std::size_t end = 0;   ///< first token past the path
    bool laneIndexed = false; ///< a subscript mentions a safe index
    bool methodStop = false;  ///< ended at a non-mutating method call
    std::string mutMethod;    ///< ended at this mutating method
    int mutLine = 0;
};

/** Walk `root . field [ expr ] -> field ...` from the identifier at
 *  `j`; `safeIdx` names identifiers that make a subscript
 *  lane-indexed. */
PathInfo
matchPath(const std::vector<Token> &toks, std::size_t j,
          const std::set<std::string> &safeIdx)
{
    PathInfo p;
    p.root = toks[j].text;
    std::size_t k = j + 1;
    while (k < toks.size()) {
        const std::string &t = toks[k].text;
        if ((t == "." || t == "->") && isIdent(toks, k + 1)) {
            if (at(toks, k + 2) == "(") {
                if (isMutatingMethod(toks[k + 1].text)) {
                    p.mutMethod = toks[k + 1].text;
                    p.mutLine = toks[k + 1].line;
                } else {
                    p.methodStop = true;
                }
                p.end = k;
                return p;
            }
            k += 2;
            continue;
        }
        if (t == "[") {
            std::size_t close = matchForward(toks, k, "[", "]");
            for (std::size_t m = k + 1; m < close; ++m)
                if (isIdent(toks, m) && safeIdx.count(toks[m].text))
                    p.laneIndexed = true;
            k = close + 1;
            continue;
        }
        break;
    }
    p.end = k;
    return p;
}

/** Does the write-operator test match at `end` (just past a path)?
 *  The lexer splits compound operators, so `+=` is `+ =`, `<<=` is
 *  `< < =`, postfix `++` is `+ +`. */
bool
writeOpAt(const std::vector<Token> &toks, std::size_t end)
{
    const std::string &a = at(toks, end);
    const std::string &b = at(toks, end + 1);
    const std::string &c = at(toks, end + 2);
    if (a == "=")
        return b != "="; // assignment, not ==
    if (a == "+" || a == "-") {
        if (b == "=")
            return true; // += -=
        if (b == a)
            return true; // postfix ++ / --
        return false;
    }
    if (a == "*" || a == "/" || a == "%" || a == "^" || a == "|" ||
        a == "&")
        return b == "=" &&
               c != "="; // *= /= %= ^= |= &= (not |== nonsense)
    if ((a == "<" && b == "<" && c == "=") ||
        (a == ">" && b == ">" && c == "="))
        return true; // <<= >>=
    return false;
}

/** Is the identifier at `j` preceded by prefix ++/--? */
bool
prefixIncDec(const std::vector<Token> &toks, std::size_t j)
{
    if (j < 2)
        return false;
    const std::string &a = at(toks, j - 2);
    const std::string &b = at(toks, j - 1);
    if (!((a == "+" && b == "+") || (a == "-" && b == "-")))
        return false;
    // `x + +y` / postfix of a previous expression both leave an
    // operand immediately before the pair.
    const std::string &before = at(toks, j - 3);
    return !(isIdent(toks, j - 3) || before == "]" || before == ")");
}

/** Summary builder for by-reference parameter mutations, memoized
 *  over the named src/-layer definitions. */
class MutTable
{
  public:
    explicit MutTable(const std::vector<FileContext> &ctxs)
        : _ctxs(ctxs)
    {
        for (std::size_t i = 0; i < ctxs.size(); ++i) {
            if (allowedIncludes(ctxs[i].layer).empty())
                continue;
            for (const FuncDef &f : ctxs[i].parsed.funcs)
                if (!f.name.empty())
                    _byName[f.name].push_back(
                        {static_cast<int>(i), &f});
        }
    }

    const std::map<std::string,
                   std::vector<std::pair<int, const FuncDef *>>> &
    byName() const
    {
        return _byName;
    }

    const MutSummary &
    summaryOf(int file, const FuncDef *f)
    {
        auto it = _done.find(f);
        if (it != _done.end())
            return it->second;
        if (!_inProgress.insert(f).second) {
            static const MutSummary empty;
            return empty; // recursion: no mutations claimed
        }
        MutSummary s = compute(file, f);
        _inProgress.erase(f);
        return _done[f] = s;
    }

  private:
    const std::vector<FileContext> &_ctxs;
    std::map<std::string,
             std::vector<std::pair<int, const FuncDef *>>>
        _byName;
    std::map<const FuncDef *, MutSummary> _done;
    std::set<const FuncDef *> _inProgress;

    MutSummary
    compute(int file, const FuncDef *f)
    {
        const FileContext &ctx = _ctxs[file];
        const auto &toks = ctx.lexed.tokens;
        MutSummary s;
        parseParams(toks, f->paramOpen, s.paramNames, s.byRef);
        if (s.paramNames.empty())
            return s;
        std::map<std::string, std::size_t> paramIdx;
        std::set<std::string> paramSet;
        for (std::size_t p = 0; p < s.paramNames.size(); ++p) {
            paramIdx[s.paramNames[p]] = p;
            paramSet.insert(s.paramNames[p]);
        }
        auto record = [&](std::size_t p, const PathInfo &path,
                          int line) {
            if (!s.byRef[p])
                return;
            ParamMutation m;
            m.where =
                " at " + ctx.path + ":" + std::to_string(line);
            m.line = line;
            if (path.laneIndexed) {
                // Which parameters appeared in subscripts?  Re-walk
                // cheaply: matchPath marked laneIndexed from the
                // param set, so collect them here.
                // (Recomputed below in the main walk.)
            }
            m.idxParams = _lastSubscriptParams;
            s.mutations[p].push_back(std::move(m));
        };

        for (std::size_t j = f->bodyFirst + 1;
             j < f->bodyLast && j < toks.size(); ++j) {
            if (toks[j].kind != Token::Kind::Ident)
                continue;
            const std::string &name = toks[j].text;
            auto pit = paramIdx.find(name);
            if (pit == paramIdx.end())
                continue;
            const std::string &prev = at(toks, j - 1);
            if (prev == "." || prev == "->")
                continue;
            std::size_t p = pit->second;

            // Direct write through the parameter?
            _lastSubscriptParams.clear();
            PathInfo path = collectPath(toks, j, paramSet, paramIdx);
            // A non-mutating method call ends the walk entirely: a
            // prefix ++ then targets the method's return value (a
            // reference the callee owns), not the parameter.
            bool write = !path.methodStop &&
                         (!path.mutMethod.empty() ||
                          prefixIncDec(toks, j) ||
                          writeOpAt(toks, path.end));
            int line = path.mutLine ? path.mutLine : toks[j].line;
            if (write) {
                record(p, path, line);
                continue;
            }
            if (path.methodStop)
                continue;

            // Bare pass-through to another function: inherit its
            // mutation summary with parameter substitution.
            inheritCall(s, toks, j, p, paramIdx);
        }
        return s;
    }

    std::set<std::size_t> _lastSubscriptParams;

    /** matchPath specialised to also record which parameters appear
     *  in subscripts along the way. */
    PathInfo
    collectPath(const std::vector<Token> &toks, std::size_t j,
                const std::set<std::string> &paramSet,
                const std::map<std::string, std::size_t> &paramIdx)
    {
        PathInfo p = matchPath(toks, j, paramSet);
        // Re-walk the subscripts to collect the parameter indices.
        std::size_t k = j + 1;
        while (k < p.end && k < toks.size()) {
            if (isPunct(toks, k, "[")) {
                std::size_t close = matchForward(toks, k, "[", "]");
                for (std::size_t m = k + 1; m < close; ++m) {
                    auto it = isIdent(toks, m)
                                  ? paramIdx.find(toks[m].text)
                                  : paramIdx.end();
                    if (it != paramIdx.end())
                        _lastSubscriptParams.insert(it->second);
                }
                k = close + 1;
            } else {
                ++k;
            }
        }
        return p;
    }

    /** `g(a, p, b)` with `p` a bare by-ref parameter: fold g's
     *  mutations of that position into the caller's summary. */
    void
    inheritCall(MutSummary &s, const std::vector<Token> &toks,
                std::size_t j, std::size_t p,
                const std::map<std::string, std::size_t> &paramIdx)
    {
        // Find the innermost enclosing call `callee( ... p ... )`.
        // Scan backwards for `ident (` at one unclosed paren depth.
        int depth = 0;
        std::size_t open = std::string::npos;
        for (std::size_t k = j; k-- > 0;) {
            const std::string &t = toks[k].text;
            if (toks[k].kind != Token::Kind::Punct) {
                continue;
            }
            if (t == ")")
                ++depth;
            else if (t == "(") {
                if (depth == 0) {
                    open = k;
                    break;
                }
                --depth;
            } else if (t == ";" || t == "{" || t == "}") {
                break;
            }
        }
        if (open == std::string::npos || open == 0 ||
            !isIdent(toks, open - 1))
            return;
        const std::string &callee = toks[open - 1].text;
        if (isKeywordIdent(callee))
            return;
        const std::string &cprev = at(toks, open - 2);
        if (cprev == "." || cprev == "->")
            return; // member call: receiver unknown
        auto cit = _byName.find(callee);
        if (cit == _byName.end())
            return;
        std::size_t close = matchForward(toks, open, "(", ")");
        auto args = splitArgs(toks, open, close);
        // Which argument position is the bare `p`?
        std::size_t argPos = std::string::npos;
        for (std::size_t a = 0; a < args.size(); ++a) {
            std::size_t b = args[a].first, e = args[a].second;
            if (e == b + 1 && b == j)
                argPos = a;
            else if (e == b + 2 && isPunct(toks, b, "&") &&
                     b + 1 == j)
                argPos = a;
        }
        if (argPos == std::string::npos)
            return;

        // All candidates must mutate that position to claim anything.
        std::vector<ParamMutation> inherited;
        for (const auto &cand : cit->second) {
            if (cand.second->isCtor || cand.second->isDtor)
                return;
            const MutSummary &cs =
                summaryOf(cand.first, cand.second);
            auto mit = cs.mutations.find(argPos);
            if (mit == cs.mutations.end() || mit->second.empty())
                return;
            if (&cand == &cit->second.front()) {
                for (const ParamMutation &m : mit->second) {
                    ParamMutation mapped;
                    mapped.where = m.where + " via " + callee + "()";
                    mapped.line = toks[j].line;
                    for (std::size_t q : m.idxParams) {
                        // Map the callee's subscript parameter to the
                        // caller's argument at that position.
                        if (q >= args.size())
                            continue;
                        std::size_t b = args[q].first,
                                    e = args[q].second;
                        if (e == b + 1 && isIdent(toks, b)) {
                            auto it2 = paramIdx.find(toks[b].text);
                            if (it2 != paramIdx.end())
                                mapped.idxParams.insert(it2->second);
                        }
                        // Unmapped index expressions leave the set
                        // smaller, i.e. closer to an unconditional
                        // write — the conservative direction.
                    }
                    inherited.push_back(std::move(mapped));
                }
            }
        }
        for (ParamMutation &m : inherited)
            s.mutations[p].push_back(std::move(m));
    }
};

/** Capture-list classification for one lambda. */
struct Captures
{
    bool defaultRef = false;
    bool defaultVal = false;
    bool capturesThis = false;
    std::set<std::string> byRef;
    std::set<std::string> byVal;
};

Captures
parseCaptures(const std::vector<Token> &toks, std::size_t captureOpen)
{
    Captures c;
    if (captureOpen == std::string::npos ||
        !isPunct(toks, captureOpen, "["))
        return c;
    std::size_t close = matchForward(toks, captureOpen, "[", "]");
    for (const auto &part : splitArgs(toks, captureOpen, close)) {
        std::size_t b = part.first, e = part.second;
        if (b >= e)
            continue;
        const std::string &first = toks[b].text;
        if (e == b + 1 && first == "&") {
            c.defaultRef = true;
        } else if (e == b + 1 && first == "=") {
            c.defaultVal = true;
        } else if (first == "this") {
            c.capturesThis = true;
        } else if (first == "*" && at(toks, b + 1) == "this") {
            // *this copies the object: member writes are lane-local.
        } else if (first == "&" && isIdent(toks, b + 1)) {
            c.byRef.insert(toks[b + 1].text);
        } else if (isIdent(toks, b)) {
            // `name` or `name = expr` init-capture: both by value.
            c.byVal.insert(first);
        }
    }
    return c;
}

/** Analysis state for one entry lambda. */
class LaneScan
{
  public:
    LaneScan(const FileContext &ctx, const FuncDef &lam,
             MutTable &muts,
             const std::vector<std::pair<std::size_t, std::size_t>>
                 &otherLambdas,
             std::vector<Diagnostic> &out)
        : _ctx(ctx), _toks(ctx.lexed.tokens), _lam(lam), _muts(muts),
          _out(out)
    {
        _caps = parseCaptures(_toks, lam.captureOpen);
        std::vector<std::string> names;
        std::vector<bool> refs;
        parseParams(_toks, lam.paramOpen, names, refs);
        for (const std::string &n : names)
            _laneDerived.insert(n); // every lambda param is a lane id
        (void)otherLambdas;
    }

    void
    run()
    {
        for (std::size_t j = _lam.bodyFirst + 1;
             j < _lam.bodyLast && j < _toks.size(); ++j) {
            if (_toks[j].kind != Token::Kind::Ident)
                continue;
            const std::string &name = _toks[j].text;
            if (isKeywordIdent(name))
                continue;
            if (tryDeclaration(j)) {
                continue; // the declared name is not a write target
            }
            const std::string &prev = at(_toks, j - 1);
            if (prev == "." || prev == "->")
                continue; // path component, not a root
            if (isIdent(_toks, j - 1) &&
                !isKeywordIdent(at(_toks, j - 1)))
                continue; // `Type name` handled by tryDeclaration
            if (at(_toks, j + 1) == "(" && freeCallContext(_toks, j)) {
                checkCallArgs(j);
                continue;
            }
            checkWrite(j);
        }
    }

  private:
    const FileContext &_ctx;
    const std::vector<Token> &_toks;
    const FuncDef &_lam;
    MutTable &_muts;
    std::vector<Diagnostic> &_out;
    Captures _caps;
    std::set<std::string> _locals;      ///< per-iteration storage
    std::set<std::string> _laneDerived; ///< safe lane-indexed names
    std::set<std::string> _refAlias; ///< ref locals aliasing shared state
    std::set<std::pair<int, std::string>> _seen;

    bool
    safeRoot(const std::string &root) const
    {
        if (_refAlias.count(root))
            return false;
        if (_locals.count(root) || _laneDerived.count(root))
            return true;
        if (_caps.byVal.count(root))
            return true;
        if (_caps.byRef.count(root))
            return false;
        if (_caps.defaultRef || _caps.capturesThis)
            return false; // unknown name under [&] / [this]
        return true; // by-value default or not captured at all
    }

    /** Handle `Type name = init;`, `Type &name = init;`,
     *  `for (Type name : range)`, `Type name(init)`, `Type name;`.
     *  Returns true when `j` is a declared name (caller skips it). */
    bool
    tryDeclaration(std::size_t j)
    {
        const std::string &prev = at(_toks, j - 1);
        bool typeish =
            (isIdent(_toks, j - 1) && !isKeywordIdent(prev) &&
             prev != "return") ||
            prev == "&" || prev == "*" || prev == ">";
        if (prev == "&" || prev == "*") {
            // require a type-ish token before the &/*: `a & b` is an
            // expression, `Shard & sh` is a declarator.
            const std::string &pp = at(_toks, j - 2);
            if (!(isIdent(_toks, j - 2) && !isKeywordIdent(pp)) &&
                pp != ">")
                return false;
        }
        if (!typeish)
            return false;
        const std::string &next = at(_toks, j + 1);
        bool decl = next == "=" || next == ";" || next == "{" ||
                    next == "(" || next == ":" || next == ")" ||
                    next == ",";
        if (!decl)
            return false;
        if (next == "=" && at(_toks, j + 2) == "=")
            return false; // `x == y` comparison, not a declaration
        if (next == ":" && at(_toks, j + 1) == "::")
            return false;

        bool isRef = prev == "&";
        bool mentionsLane = false;
        if (next == "=" || next == ":") {
            std::size_t end = initEnd(j + 2, next == ":");
            for (std::size_t m = j + 2; m < end; ++m)
                if (isIdent(_toks, m) &&
                    _laneDerived.count(_toks[m].text))
                    mentionsLane = true;
        } else if (next == "{" || next == "(") {
            const char *op = next == "{" ? "{" : "(";
            const char *cl = next == "{" ? "}" : ")";
            std::size_t close = matchForward(_toks, j + 1, op, cl);
            for (std::size_t m = j + 2; m < close; ++m)
                if (isIdent(_toks, m) &&
                    _laneDerived.count(_toks[m].text))
                    mentionsLane = true;
        }

        const std::string &name = _toks[j].text;
        if (isRef) {
            if (mentionsLane)
                _laneDerived.insert(name);
            else
                _refAlias.insert(name);
        } else {
            _locals.insert(name);
            if (mentionsLane)
                _laneDerived.insert(name);
        }
        return true;
    }

    /** End of an initializer starting at `b`: the `;` at depth 0, or
     *  for a range-for the `)` that closes the for-head. */
    std::size_t
    initEnd(std::size_t b, bool rangeFor) const
    {
        int paren = 0, brace = 0, bracket = 0;
        for (std::size_t m = b; m < _toks.size(); ++m) {
            const std::string &t = _toks[m].text;
            if (_toks[m].kind != Token::Kind::Punct)
                continue;
            if (t == "(")
                ++paren;
            else if (t == ")") {
                if (rangeFor && paren == 0)
                    return m;
                --paren;
            } else if (t == "{")
                ++brace;
            else if (t == "}") {
                if (brace == 0)
                    return m;
                --brace;
            } else if (t == "[")
                ++bracket;
            else if (t == "]")
                --bracket;
            else if (t == ";" && paren == 0 && brace == 0 &&
                     bracket == 0)
                return m;
        }
        return _toks.size();
    }

    void
    flag(int line, const std::string &message,
         const std::string &hint)
    {
        if (!_seen.insert({line, message}).second)
            return;
        Diagnostic d;
        d.file = _ctx.path;
        d.line = line;
        d.rule = "lane-safety";
        d.message = message;
        d.hint = hint;
        _out.push_back(std::move(d));
    }

    void
    checkWrite(std::size_t j)
    {
        PathInfo p = matchPath(_toks, j, _laneDerived);
        // A non-mutating method call ends the walk entirely: a prefix
        // ++ then targets the method's return value (e.g. the
        // lane-aware reference counter() hands back), not the capture.
        bool write = !p.methodStop &&
                     (!p.mutMethod.empty() || prefixIncDec(_toks, j) ||
                      writeOpAt(_toks, p.end));
        if (!write || p.laneIndexed || safeRoot(p.root))
            return;
        int line = p.mutLine ? p.mutLine : _toks[j].line;
        std::string what =
            !p.mutMethod.empty()
                ? "mutating call '" + p.mutMethod + "' on"
                : "write through";
        flag(line,
             "parallelFor lane lambda: " + what +
                 " shared capture '" + p.root +
                 "' is not indexed by the lane parameter",
             "give each lane its own slot (index by the lane id and "
             "merge after the join), capture by value, or "
             "restructure per the per-lane-buffer discipline "
             "(sim::ChainEngine::HostLane)");
    }

    /** `callee(..., captured, ...)`: flag when every candidate
     *  mutates the corresponding by-reference parameter and no
     *  lane-derived index protects the write. */
    void
    checkCallArgs(std::size_t j)
    {
        const std::string &callee = _toks[j].text;
        auto cit = _muts.byName().find(callee);
        if (cit == _muts.byName().end())
            return;
        std::size_t open = j + 1;
        std::size_t close = matchForward(_toks, open, "(", ")");
        auto args = splitArgs(_toks, open, close);

        for (std::size_t a = 0; a < args.size(); ++a) {
            std::size_t b = args[a].first, e = args[a].second;
            std::size_t rootAt = b;
            if (e > b + 1 && isPunct(_toks, b, "&"))
                rootAt = b + 1;
            if (rootAt >= e || !isIdent(_toks, rootAt) ||
                isKeywordIdent(_toks[rootAt].text))
                continue;
            PathInfo p = matchPath(_toks, rootAt, _laneDerived);
            if (p.end != e)
                continue; // not a bare path argument
            if (p.methodStop || !p.mutMethod.empty())
                continue;
            if (p.laneIndexed || safeRoot(p.root))
                continue;

            // Every candidate must mutate position `a`.
            const ParamMutation *witness = nullptr;
            bool allMutate = true;
            for (const auto &cand : cit->second) {
                if (cand.second->isCtor || cand.second->isDtor) {
                    allMutate = false;
                    break;
                }
                const MutSummary &cs =
                    _muts.summaryOf(cand.first, cand.second);
                auto mit = cs.mutations.find(a);
                if (mit == cs.mutations.end() ||
                    mit->second.empty()) {
                    allMutate = false;
                    break;
                }
                // A mutation is excused only when one of its index
                // parameters receives a lane-derived argument.
                for (const ParamMutation &m : mit->second) {
                    bool excused = false;
                    for (std::size_t q : m.idxParams) {
                        if (q >= args.size())
                            continue;
                        std::size_t qb = args[q].first,
                                    qe = args[q].second;
                        if (qe == qb + 1 && isIdent(_toks, qb) &&
                            _laneDerived.count(_toks[qb].text))
                            excused = true;
                    }
                    if (!excused && !witness)
                        witness = &m;
                }
            }
            if (!allMutate || !witness)
                continue;
            flag(_toks[rootAt].line,
                 "parallelFor lane lambda: shared capture '" +
                     p.root + "' is mutated by '" + callee + "'" +
                     witness->where +
                     " without a lane-derived index",
                 "pass a per-lane slot instead, or index the "
                 "callee's write by a lane-derived argument");
        }
    }
};

} // namespace

void
runLaneSafety(const std::vector<FileContext> &ctxs,
              std::vector<Diagnostic> &out)
{
    MutTable muts(ctxs);
    for (const FileContext &ctx : ctxs) {
        const auto &toks = ctx.lexed.tokens;

        // parallelFor call argument ranges in this file.
        std::vector<std::pair<std::size_t, std::size_t>> ranges;
        for (std::size_t j = 0; j + 1 < toks.size(); ++j) {
            if (toks[j].kind != Token::Kind::Ident ||
                toks[j].text != "parallelFor" ||
                !isPunct(toks, j + 1, "("))
                continue;
            ranges.push_back(
                {j + 1, matchForward(toks, j + 1, "(", ")")});
        }
        if (ranges.empty())
            continue;

        // Entry lambdas: lambdas inside some range.  Analyze only the
        // outermost of nested entry lambdas — the linear scan covers
        // nested bodies with the outer's lane-derived context.
        std::vector<const FuncDef *> entries;
        for (const FuncDef &f : ctx.parsed.funcs) {
            if (!f.name.empty())
                continue;
            std::size_t pos = f.captureOpen != std::string::npos
                                  ? f.captureOpen
                                  : f.bodyFirst;
            for (const auto &r : ranges)
                if (pos > r.first && pos < r.second) {
                    entries.push_back(&f);
                    break;
                }
        }
        std::vector<std::pair<std::size_t, std::size_t>> spans;
        for (const FuncDef *f : entries)
            spans.push_back({f->bodyFirst, f->bodyLast});
        for (const FuncDef *f : entries) {
            bool nested = false;
            for (const auto &s : spans)
                if (f->bodyFirst > s.first && f->bodyLast < s.second)
                    nested = true;
            if (nested)
                continue;
            LaneScan(ctx, *f, muts, spans, out).run();
        }
    }
}

// ---------------------------------------------------------------------
// shared(post-build) immutability / escape
// ---------------------------------------------------------------------

namespace {

/** Member-variable root at token `j` inside a member function body:
 *  `_name` (the codebase's member naming convention) or
 *  `this->name`.  "" when the token is not a member root. */
std::string
memberRootAt(const std::vector<Token> &toks, std::size_t j)
{
    if (!isIdent(toks, j))
        return "";
    const std::string &prev = at(toks, j - 1);
    if (prev == "->" && at(toks, j - 2) == "this")
        return toks[j].text;
    if (prev == "." || prev == "->" || prev == "::")
        return ""; // someone else's field / qualified name
    const std::string &t = toks[j].text;
    if (t.size() > 1 && t[0] == '_')
        return t;
    return "";
}

/** Does the definition return a non-const reference?  Walks back
 *  from the name at `paramOpen - 1`, skipping `Class ::` qualifiers,
 *  and checks for `&` with no `const` in the preceding return-type
 *  tokens. */
bool
returnsNonConstRef(const std::vector<Token> &toks, const FuncDef &f)
{
    if (f.paramOpen == std::string::npos || f.paramOpen < 2)
        return false;
    std::size_t k = f.paramOpen - 1; // the declared name
    while (k >= 2 && at(toks, k - 1) == "::" && isIdent(toks, k - 2))
        k -= 2;
    if (k == 0 || !isPunct(toks, k - 1, "&"))
        return false;
    for (std::size_t m = k - 1; m-- > 0;) {
        const std::string &t = toks[m].text;
        if (t == ";" || t == "}" || t == "{" || t == ")")
            break;
        if (t == "const")
            return false;
        if (f.paramOpen - m > 10)
            break; // return types are short; stop rather than walk
    }
    return true;
}

/** Scan one non-API member function of a shared class. */
void
scanSharedMember(const FileContext &ctx, const FuncDef &f,
                 const ClassInfo &cls, MutTable &muts,
                 std::vector<Diagnostic> &out)
{
    const auto &toks = ctx.lexed.tokens;
    const std::set<std::string> noIdx;
    std::set<std::pair<int, std::string>> seen;
    auto flag = [&](int line, const std::string &msg,
                    const std::string &hint) {
        if (!seen.insert({line, msg}).second)
            return;
        Diagnostic d;
        d.file = ctx.path;
        d.line = line;
        d.rule = "shared";
        d.message = msg;
        d.hint = hint;
        out.push_back(std::move(d));
    };
    const std::string head =
        "shared(post-build) class '" + cls.name + "': ";
    const char *kHint =
        "post-build mutation must flow through the virtual plugin "
        "API the engine serializes; rebuild the state in the "
        "constructor or reset(), or justify the synchronization "
        "with an allow(shared) escape";

    for (std::size_t j = f.bodyFirst + 1;
         j < f.bodyLast && j < toks.size(); ++j) {
        if (!isIdent(toks, j))
            continue;

        // Member handed by reference to a free function whose every
        // candidate mutates that position — the cross-TU escape.
        if (isPunct(toks, j + 1, "(") && freeCallContext(toks, j) &&
            !isKeywordIdent(toks[j].text)) {
            const std::string &callee = toks[j].text;
            auto cit = muts.byName().find(callee);
            if (cit == muts.byName().end())
                continue;
            std::size_t close = matchForward(toks, j + 1, "(", ")");
            auto args = splitArgs(toks, j + 1, close);
            for (std::size_t a = 0; a < args.size(); ++a) {
                std::size_t b = args[a].first, e = args[a].second;
                std::size_t rootAt = b;
                if (e > b + 1 && isPunct(toks, b, "&"))
                    rootAt = b + 1;
                std::string m = memberRootAt(toks, rootAt);
                if (m.empty())
                    continue;
                PathInfo p = matchPath(toks, rootAt, noIdx);
                if (p.end != e || p.methodStop ||
                    !p.mutMethod.empty())
                    continue;
                const ParamMutation *witness = nullptr;
                bool all = true;
                for (const auto &cand : cit->second) {
                    if (cand.second->isCtor || cand.second->isDtor) {
                        all = false;
                        break;
                    }
                    const MutSummary &cs =
                        muts.summaryOf(cand.first, cand.second);
                    auto mit = cs.mutations.find(a);
                    if (mit == cs.mutations.end() ||
                        mit->second.empty()) {
                        all = false;
                        break;
                    }
                    if (!witness)
                        witness = &mit->second.front();
                }
                if (!all || !witness)
                    continue;
                flag(toks[rootAt].line,
                     head + "member '" + m + "' is mutated by '" +
                         callee + "'" + witness->where,
                     kHint);
            }
            continue;
        }

        // Direct write / mutating container call through a member.
        std::string m = memberRootAt(toks, j);
        if (m.empty())
            continue;
        PathInfo p = matchPath(toks, j, noIdx);
        bool write = !p.methodStop &&
                     (!p.mutMethod.empty() || prefixIncDec(toks, j) ||
                      writeOpAt(toks, p.end));
        if (!write)
            continue;
        int line = p.mutLine ? p.mutLine : toks[j].line;
        std::string what =
            !p.mutMethod.empty()
                ? "mutating call '" + p.mutMethod + "' on member '" +
                      m + "'"
                : "member '" + m + "' is written";
        flag(line,
             head + what + " in '" + f.name +
                 "' outside the virtual plugin API",
             kHint);
    }

    // Escaping non-const reference to a member: the caller can then
    // mutate the shared object with no rule in sight.
    if (returnsNonConstRef(toks, f)) {
        for (std::size_t j = f.bodyFirst + 1;
             j < f.bodyLast && j < toks.size(); ++j) {
            if (!isIdent(toks, j) || toks[j].text != "return")
                continue;
            std::size_t r = j + 1;
            if (isPunct(toks, r, "*") || isPunct(toks, r, "&"))
                ++r;
            std::string m = memberRootAt(toks, r);
            if (m.empty() || !isPunct(toks, r + 1, ";"))
                continue;
            flag(toks[j].line,
                 head + "'" + f.name +
                     "' returns a non-const reference to member '" +
                     m + "'",
                 "hand out a const reference — the engine shares "
                 "this object across shards — or justify the "
                 "escape with an allow(shared) escape");
        }
    }
}

} // namespace

void
runSharedImmutability(const std::vector<FileContext> &ctxs,
                      const ClassGraph &cg,
                      std::vector<Diagnostic> &out)
{
    bool anyShared = false;
    for (const ClassInfo &c : cg.classes)
        if (c.shared)
            anyShared = true;
    if (!anyShared)
        return;
    MutTable muts(ctxs);
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        if (allowedIncludes(ctxs[i].layer).empty())
            continue;
        for (const FuncDef &f : ctxs[i].parsed.funcs) {
            if (f.name.empty() || f.className.empty() || f.isCtor ||
                f.isDtor)
                continue;
            auto it = cg.byName.find(f.className);
            if (it == cg.byName.end())
                continue;
            const ClassInfo &cls = cg.classes[it->second];
            if (!cls.shared || cls.apiNames.count(f.name))
                continue;
            scanSharedMember(ctxs[i], f, cls, muts, out);
        }
    }
}

// ---------------------------------------------------------------------
// sched-purity
// ---------------------------------------------------------------------

void
runSchedPurity(const std::vector<FileContext> &ctxs,
               std::vector<Diagnostic> &out)
{
    struct Target
    {
        int file = -1;
        const FuncDef *def = nullptr;
    };
    std::vector<Target> targets;
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        if (allowedIncludes(ctxs[i].layer).empty())
            continue;
        for (const Marker &mk : ctxs[i].lexed.pureMarkers) {
            const FuncDef *best = nullptr;
            for (const FuncDef &f : ctxs[i].parsed.funcs) {
                if (f.name.empty() || f.line < mk.line)
                    continue;
                if (!best || f.line < best->line)
                    best = &f;
            }
            if (best)
                targets.push_back({static_cast<int>(i), best});
        }
    }
    if (targets.empty())
        return;

    MutTable muts(ctxs);
    TaintGraph tg = buildTaintGraph(ctxs, nullptr);

    for (const Target &t : targets) {
        const FileContext &ctx = ctxs[t.file];
        const auto &toks = ctx.lexed.tokens;
        const FuncDef &f = *t.def;

        // The target plus any lambdas nested in its body (the parser
        // splits lambdas into their own definitions).
        std::vector<const FuncDef *> defs{&f};
        for (const FuncDef &g : ctx.parsed.funcs)
            if (g.name.empty() && g.bodyFirst > f.bodyFirst &&
                g.bodyLast < f.bodyLast)
                defs.push_back(&g);

        std::set<std::pair<int, std::string>> seen;
        auto flag = [&](int line, const std::string &msg,
                        const std::string &hint) {
            if (!seen.insert({line, msg}).second)
                return;
            Diagnostic d;
            d.file = ctx.path;
            d.line = line;
            d.rule = "sched-purity";
            d.message = msg;
            d.hint = hint;
            out.push_back(std::move(d));
        };
        const std::string head =
            "pure ranking function '" + f.name + "': ";

        // (a) By-reference argument mutation, with the summary's
        // cross-TU witness when the write happens in a callee.
        for (const FuncDef *d : defs) {
            const MutSummary &s = muts.summaryOf(t.file, d);
            for (const auto &entry : s.mutations) {
                std::size_t p = entry.first;
                if (p >= s.byRef.size() || !s.byRef[p])
                    continue; // by-value: mutating the copy is pure
                for (const ParamMutation &m : entry.second)
                    flag(m.line ? m.line : d->line,
                         head + "by-reference parameter '" +
                             s.paramNames[p] + "' is mutated" +
                             m.where,
                         "a ranking function must order, not "
                         "update — return the choice and let the "
                         "scenario engine apply it");
            }
        }

        // (b) Static local state (constants excepted) survives
        // across calls and makes the ranking order-dependent.
        for (std::size_t j = f.bodyFirst + 1;
             j < f.bodyLast && j < toks.size(); ++j) {
            if (!isIdent(toks, j) || toks[j].text != "static")
                continue;
            const std::string &nx = at(toks, j + 1);
            if (nx == "const" || nx == "constexpr")
                continue;
            flag(toks[j].line,
                 head + "static local state survives across calls",
                 "rank from the arguments alone; persistent state "
                 "makes the schedule depend on evaluation history");
        }

        // (c) Calls into the determinism-taint graph: a ranking
        // function drawing entropy breaks replay even when the flat
        // determinism rule cannot see the wrapper.
        for (const FuncDef *d : defs) {
            for (const CallSite &cs : d->calls) {
                auto it = tg.byName.find(cs.name);
                if (it == tg.byName.end())
                    continue;
                const TaintNode *witness = nullptr;
                bool all = true;
                for (int c : it->second) {
                    if (!tg.nodes[c].tainted) {
                        all = false;
                        break;
                    }
                    if (!witness)
                        witness = &tg.nodes[c];
                }
                if (!all || !witness)
                    continue;
                flag(cs.line,
                     head + "call to determinism-tainted '" +
                         cs.name + "': " + cs.name + "() → " +
                         witness->chain,
                     "rank deterministically; draw randomness from "
                     "the scenario StreamRng outside the ranking "
                     "function");
            }
        }
    }
}

} // namespace ot::check

#include "check/cfg.hh"

#include <set>

namespace ot::check {

namespace {

const std::string &
at(const std::vector<Token> &toks, std::size_t i)
{
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
}

bool
isIdent(const std::vector<Token> &toks, std::size_t i)
{
    return i < toks.size() && toks[i].kind == Token::Kind::Ident;
}

/** Keywords that look like calls (`if (`, `sizeof (`) but are not. */
bool
isCallKeyword(const std::string &t)
{
    static const std::set<std::string> kw = {
        "if",       "for",        "while",         "switch",
        "return",   "co_return",  "co_await",      "co_yield",
        "sizeof",   "alignof",    "decltype",      "typeid",
        "catch",    "throw",      "static_assert", "alignas",
        "noexcept", "delete",     "new",           "asm",
        "requires", "__builtin_expect",
    };
    return kw.count(t) != 0;
}

/** Builtin type names that precede a variable in `Type var(args)`. */
bool
isBuiltinType(const std::string &t)
{
    static const std::set<std::string> ty = {
        "void",   "bool",   "char",    "short",    "int",
        "long",   "float",  "double",  "auto",     "unsigned",
        "signed", "size_t", "wchar_t", "char8_t",  "char16_t",
        "char32_t",
    };
    return ty.count(t) != 0;
}

/** Calls that never return: a statement making one exits the flow. */
bool
isAbortLike(const std::string &t)
{
    return t == "abort" || t == "exit" || t == "_Exit" ||
           t == "quick_exit" || t == "terminate" ||
           t == "__builtin_trap" || t == "__builtin_unreachable";
}

class Parser
{
  public:
    explicit Parser(const LexedFile &lexed) : _t(lexed.tokens) {}

    ParsedFile
    run()
    {
        parseScope("", false);
        return std::move(_out);
    }

  private:
    const std::vector<Token> &_t;
    std::size_t _i = 0;
    ParsedFile _out;

    // -- token helpers ------------------------------------------------

    std::size_t size() const { return _t.size(); }
    bool done() const { return _i >= _t.size(); }
    const std::string &text(std::size_t i) const { return at(_t, i); }
    bool ident(std::size_t i) const { return isIdent(_t, i); }

    bool
    punct(std::size_t i, const char *s) const
    {
        return i < _t.size() && _t[i].kind == Token::Kind::Punct &&
               _t[i].text == s;
    }

    int
    line(std::size_t i) const
    {
        return i < _t.size() ? _t[i].line
               : _t.empty()  ? 1
                             : _t.back().line;
    }

    /** Index of the `}` matching the `{` at `open` (or last token). */
    std::size_t
    matchBrace(std::size_t open) const
    {
        int depth = 0;
        for (std::size_t j = open; j < _t.size(); ++j) {
            if (punct(j, "{"))
                ++depth;
            else if (punct(j, "}") && --depth == 0)
                return j;
        }
        return _t.empty() ? 0 : _t.size() - 1;
    }

    /** Index of the `(` matching the `)` at `close` (or npos). */
    std::size_t
    backMatchParen(std::size_t close) const
    {
        int depth = 0;
        for (std::size_t j = close + 1; j-- > 0;) {
            if (punct(j, ")"))
                ++depth;
            else if (punct(j, "(") && --depth == 0)
                return j;
        }
        return std::string::npos;
    }

    /** Index of the `[` matching the `]` at `close` (or npos). */
    std::size_t
    backMatchBracket(std::size_t close) const
    {
        int depth = 0;
        for (std::size_t j = close + 1; j-- > 0;) {
            if (punct(j, "]"))
                ++depth;
            else if (punct(j, "[") && --depth == 0)
                return j;
        }
        return std::string::npos;
    }

    /** For the lambda body `{` at `j`, locate the capture-list `[`
     *  and parameter-list `(` (npos when absent).  Mirrors the
     *  look-back walk of isLambdaBrace. */
    void
    lambdaShape(std::size_t j, std::size_t &captureOpen,
                std::size_t &paramOpen) const
    {
        captureOpen = std::string::npos;
        paramOpen = std::string::npos;
        std::size_t steps = 0;
        for (std::size_t k = j; k-- > 0 && steps < 24; ++steps) {
            const std::string &t = text(k);
            if (t == "]") {
                captureOpen = backMatchBracket(k);
                return; // no parameter list
            }
            if (t == ")") {
                std::size_t open = backMatchParen(k);
                if (open != std::string::npos && open > 0 &&
                    punct(open - 1, "]")) {
                    paramOpen = open;
                    captureOpen = backMatchBracket(open - 1);
                }
                return;
            }
            bool specifier =
                isIdent(_t, k) || t == "::" || t == "->" || t == "<" ||
                t == ">" || t == "*" || t == "&" || t == "," ||
                _t[k].kind == Token::Kind::Number;
            if (!specifier)
                return;
        }
    }

    void
    skipToSemicolon()
    {
        int brace = 0;
        while (!done()) {
            if (punct(_i, "{"))
                ++brace;
            else if (punct(_i, "}")) {
                if (brace == 0)
                    return; // enclosing scope end; leave it
                --brace;
            } else if (punct(_i, ";") && brace == 0) {
                ++_i;
                return;
            }
            ++_i;
        }
    }

    /** Skip a balanced `<...>` block starting at `<`. */
    void
    skipAngles()
    {
        int depth = 0;
        while (!done()) {
            if (punct(_i, "<"))
                ++depth;
            else if (punct(_i, ">")) {
                if (--depth == 0) {
                    ++_i;
                    return;
                }
            } else if (punct(_i, ";") || punct(_i, "{")) {
                return; // not a template argument list after all
            }
            ++_i;
        }
    }

    // -- event / call collection --------------------------------------

    /** Scan tokens in [first, last] for accounting events and call
     *  sites.  Ranges never straddle a lambda body (the statement
     *  parser splits around them). */
    void
    collect(std::size_t first, std::size_t last,
            std::vector<PairEvent> &events,
            std::vector<CallSite> &calls) const
    {
        for (std::size_t j = first; j <= last && j < _t.size(); ++j) {
            if (!ident(j) || !punct(j + 1, "("))
                continue;
            const std::string &name = text(j);
            if (isCallKeyword(name))
                continue;
            const std::string &prev = at(_t, j - 1);
            bool member = j > 0 && (prev == "." || prev == "->");
            bool call = member || freeCallContext(_t, j);

            if (call) {
                for (std::size_t p = 0; p < kNPairs; ++p) {
                    if (name == kPairs[p].begin)
                        events.push_back(
                            {static_cast<int>(p), true, line(j)});
                    else if (name == kPairs[p].end)
                        events.push_back(
                            {static_cast<int>(p), false, line(j)});
                }
                calls.push_back({name, line(j), member});
            } else if (j > 0 && isIdent(_t, j - 1) &&
                       !isBuiltinType(prev) && !isCallKeyword(prev)) {
                // `Type obj(args)` — a constructor invocation of
                // Type; recorded so the call graph sees RAII and
                // helper-object construction.
                calls.push_back({prev, line(j), false});
            }
        }
    }

    // -- statement parsing --------------------------------------------

    /** Is the `{` at `j` a lambda body?  True when the declarator
     *  before it ends in `]` or in `](params) <specifiers>`. */
    bool
    isLambdaBrace(std::size_t j) const
    {
        std::size_t steps = 0;
        for (std::size_t k = j; k-- > 0 && steps < 24; ++steps) {
            const std::string &t = text(k);
            if (t == "]")
                return true;
            if (t == ")") {
                std::size_t open = backMatchParen(k);
                return open != std::string::npos && open > 0 &&
                       punct(open - 1, "]");
            }
            bool specifier =
                isIdent(_t, k) || t == "::" || t == "->" || t == "<" ||
                t == ">" || t == "*" || t == "&" || t == "," ||
                _t[k].kind == Token::Kind::Number;
            if (!specifier)
                return false;
        }
        return false;
    }

    /** Parse `( ... )` after a control keyword into `s`'s head
     *  events/calls.  No-op when the paren is missing. */
    void
    parseHead(Stmt &s)
    {
        if (!punct(_i, "("))
            return;
        std::size_t open = _i;
        int depth = 0;
        while (!done()) {
            if (punct(_i, "("))
                ++depth;
            else if (punct(_i, ")") && --depth == 0) {
                ++_i;
                break;
            }
            ++_i;
        }
        std::size_t close = _i > 0 ? _i - 1 : 0;
        if (close > open + 1) {
            s.firstTok = open + 1;
            s.lastTok = close - 1;
            collect(open + 1, close - 1, s.events, s.calls);
        }
    }

    Stmt
    parseBlock()
    {
        Stmt s;
        s.kind = Stmt::Kind::Seq;
        s.line = line(_i);
        while (!done() && !punct(_i, "}")) {
            std::size_t before = _i;
            s.children.push_back(parseStmt());
            if (_i == before)
                ++_i; // never stall on unrecognized input
        }
        if (!done())
            ++_i; // consume '}'
        return s;
    }

    Stmt
    parseSwitch()
    {
        Stmt s;
        s.kind = Stmt::Kind::Switch;
        s.line = line(_i);
        ++_i; // 'switch'
        parseHead(s);
        if (!punct(_i, "{")) {
            // `switch (x) case 0: f();` — rare; treat the single
            // statement as one section.
            s.children.push_back(parseStmt());
            return s;
        }
        ++_i;
        Stmt section;
        section.kind = Stmt::Kind::Seq;
        section.line = line(_i);
        bool nextLabeled = false;
        auto flush = [&]() {
            if (!section.children.empty()) {
                s.children.push_back(std::move(section));
                section = Stmt();
                section.kind = Stmt::Kind::Seq;
                section.line = line(_i);
            }
        };
        while (!done() && !punct(_i, "}")) {
            if (text(_i) == "case") {
                flush();
                while (!done() && !punct(_i, ":"))
                    ++_i;
                if (!done())
                    ++_i;
                nextLabeled = true;
                continue;
            }
            if (text(_i) == "default" && punct(_i + 1, ":")) {
                flush();
                s.hasDefault = true;
                _i += 2;
                nextLabeled = true;
                continue;
            }
            std::size_t before = _i;
            Stmt st = parseStmt();
            if (_i == before) {
                ++_i;
                continue;
            }
            st.labeled = st.labeled || nextLabeled;
            nextLabeled = false;
            section.children.push_back(std::move(st));
        }
        if (!section.children.empty())
            s.children.push_back(std::move(section));
        if (!done())
            ++_i; // consume '}'
        return s;
    }

    /** Consume an expression statement up to `;`, splitting around
     *  lambda bodies (parsed as separate anonymous functions). */
    Stmt
    parseExprStmt(Stmt::Kind kind)
    {
        Stmt s;
        s.kind = kind;
        s.line = line(_i);
        s.firstTok = _i;
        std::size_t segStart = _i;
        int paren = 0, brace = 0;
        while (!done()) {
            if (punct(_i, "(")) {
                ++paren;
            } else if (punct(_i, ")")) {
                if (paren > 0)
                    --paren;
            } else if (punct(_i, "{")) {
                if (brace == 0 && isLambdaBrace(_i)) {
                    if (_i > segStart)
                        collect(segStart, _i - 1, s.events, s.calls);
                    ++_i;
                    FuncDef lam;
                    lam.bodyFirst = _i > 0 ? _i - 1 : 0;
                    lambdaShape(lam.bodyFirst, lam.captureOpen,
                                lam.paramOpen);
                    lam.line = line(_i);
                    lam.body = parseBlock();
                    lam.bodyLast = _i > 0 ? _i - 1 : 0;
                    finalize(std::move(lam));
                    segStart = _i;
                    continue;
                }
                ++brace;
            } else if (punct(_i, "}")) {
                if (brace == 0)
                    break; // enclosing block end; leave it
                --brace;
            } else if (punct(_i, ";") && paren == 0 && brace == 0) {
                break;
            }
            ++_i;
        }
        if (_i > segStart)
            collect(segStart, _i - 1, s.events, s.calls);
        s.lastTok = _i > 0 ? _i - 1 : 0;
        if (punct(_i, ";"))
            ++_i;
        if (s.kind == Stmt::Kind::Simple)
            for (const CallSite &c : s.calls)
                if (!c.member && isAbortLike(c.name))
                    s.kind = Stmt::Kind::Exit;
        return s;
    }

    Stmt
    parseStmt()
    {
        const std::string &t = text(_i);

        if (punct(_i, "{")) {
            ++_i;
            return parseBlock();
        }
        if (punct(_i, ";")) {
            Stmt s;
            s.kind = Stmt::Kind::Simple;
            s.line = line(_i);
            ++_i;
            return s;
        }
        if (t == "if") {
            Stmt s;
            s.kind = Stmt::Kind::If;
            s.line = line(_i);
            ++_i;
            if (text(_i) == "constexpr")
                ++_i;
            parseHead(s);
            s.children.push_back(parseStmt());
            if (text(_i) == "else") {
                ++_i;
                s.hasElse = true;
                s.children.push_back(parseStmt());
            }
            return s;
        }
        if (t == "while" || t == "for") {
            Stmt s;
            s.kind = Stmt::Kind::Loop;
            s.line = line(_i);
            ++_i;
            parseHead(s);
            s.children.push_back(parseStmt());
            return s;
        }
        if (t == "do") {
            Stmt s;
            s.kind = Stmt::Kind::Loop;
            s.isDoWhile = true;
            s.line = line(_i);
            ++_i;
            s.children.push_back(parseStmt());
            if (text(_i) == "while") {
                ++_i;
                parseHead(s);
            }
            if (punct(_i, ";"))
                ++_i;
            return s;
        }
        if (t == "switch")
            return parseSwitch();
        if (t == "return" || t == "co_return") {
            ++_i;
            Stmt s = parseExprStmt(Stmt::Kind::Return);
            return s;
        }
        if (t == "throw" || t == "goto") {
            ++_i;
            return parseExprStmt(Stmt::Kind::Exit);
        }
        if (t == "break") {
            Stmt s;
            s.kind = Stmt::Kind::Break;
            s.line = line(_i);
            ++_i;
            if (punct(_i, ";"))
                ++_i;
            return s;
        }
        if (t == "continue") {
            Stmt s;
            s.kind = Stmt::Kind::Continue;
            s.line = line(_i);
            ++_i;
            if (punct(_i, ";"))
                ++_i;
            return s;
        }
        if (t == "try") {
            Stmt s;
            s.kind = Stmt::Kind::Try;
            s.line = line(_i);
            ++_i;
            if (punct(_i, "{")) {
                ++_i;
                s.children.push_back(parseBlock());
            }
            while (text(_i) == "catch") {
                ++_i;
                Stmt head; // discard handler parameter
                parseHead(head);
                if (punct(_i, "{")) {
                    ++_i;
                    s.children.push_back(parseBlock());
                }
            }
            return s;
        }
        // `label: stmt` — the labeled statement is a jump target and
        // therefore reachable no matter what precedes it.
        if (ident(_i) && punct(_i + 1, ":") && t != "case" &&
            t != "default" && t != "public" && t != "private" &&
            t != "protected") {
            _i += 2;
            Stmt s = parseStmt();
            s.labeled = true;
            return s;
        }
        if (t == "case" || t == "default") {
            // Stray label outside a recognized switch body.
            while (!done() && !punct(_i, ":"))
                ++_i;
            if (!done())
                ++_i;
            Stmt s = parseStmt();
            s.labeled = true;
            return s;
        }
        return parseExprStmt(Stmt::Kind::Simple);
    }

    // -- declaration scope parsing ------------------------------------

    void
    recordDecl(const std::string &name, int ln)
    {
        if (!name.empty())
            _out.decls.push_back({name, ln});
    }

    /** Flatten the per-statement call lists of a body tree. */
    void
    flattenCalls(const Stmt &s, std::vector<CallSite> &out) const
    {
        out.insert(out.end(), s.calls.begin(), s.calls.end());
        for (const Stmt &c : s.children)
            flattenCalls(c, out);
    }

    void
    finalize(FuncDef f)
    {
        flattenCalls(f.body, f.calls);
        _out.funcs.push_back(std::move(f));
    }

    /** Extract the function name left of the parameter-list `(`. */
    void
    extractFuncName(std::size_t firstParen, std::size_t start,
                    std::string &name, std::string &classQual,
                    bool &isDtor) const
    {
        name.clear();
        classQual.clear();
        isDtor = false;
        if (firstParen <= start)
            return;
        std::size_t k = firstParen - 1;
        if (ident(k)) {
            name = text(k);
            if (name == "operator") {
                // `operator()` — the parameter list is the second
                // paren pair; the first is the symbol itself.
                name = "operator()";
            } else if (k > start && text(k - 1) == "operator") {
                name = "operator " + name; // conversion operator
                --k;
            } else if (k > start && punct(k - 1, "~")) {
                isDtor = true;
                name = "~" + name;
                --k;
            }
        } else if (_t[k].kind == Token::Kind::Punct &&
                   text(k) != "::") {
            // operator+ / operator[] / operator() — collect the
            // punctuation run back to the keyword.
            std::string op;
            while (k > start && _t[k].kind == Token::Kind::Punct &&
                   text(k) != "::")
                op = text(k--) + op;
            if (text(k) == "operator")
                name = "operator" + op;
            else
                return;
        } else {
            return;
        }
        // Innermost `Class::` qualifier, for out-of-line members.
        if (k >= start + 2 && text(k - 1) == "::" && ident(k - 2))
            classQual = text(k - 2);
    }

    void
    parseClassLike(const std::string &className)
    {
        ++_i; // class/struct/union
        while (punct(_i, "[")) { // attributes
            int depth = 0;
            while (!done()) {
                if (punct(_i, "["))
                    ++depth;
                else if (punct(_i, "]") && --depth == 0) {
                    ++_i;
                    break;
                }
                ++_i;
            }
        }
        std::string name;
        if (ident(_i) && text(_i) != "final") {
            name = text(_i);
            recordDecl(name, line(_i));
            ++_i;
        }
        // Base clause / fwd decl: scan for `{` or `;` at top level.
        int angle = 0;
        while (!done()) {
            if (punct(_i, "<"))
                ++angle;
            else if (punct(_i, ">") && angle > 0)
                --angle;
            else if (punct(_i, ";")) {
                ++_i;
                return; // forward declaration
            } else if (punct(_i, "{") && angle == 0) {
                ++_i;
                parseScope(name.empty() ? className : name, true);
                skipToSemicolon(); // trailing declarators
                return;
            } else if (punct(_i, "}")) {
                return; // malformed; leave scope end for the caller
            }
            ++_i;
        }
    }

    void
    parseEnum()
    {
        ++_i; // 'enum'
        if (text(_i) == "class" || text(_i) == "struct")
            ++_i;
        if (ident(_i)) {
            recordDecl(text(_i), line(_i));
            ++_i;
        }
        while (!done() && !punct(_i, "{") && !punct(_i, ";") &&
               !punct(_i, "}"))
            ++_i; // underlying type
        if (!punct(_i, "{")) {
            if (punct(_i, ";"))
                ++_i;
            return;
        }
        ++_i;
        bool expectName = true;
        int depth = 0;
        while (!done() && !(punct(_i, "}") && depth == 0)) {
            if (punct(_i, "{") || punct(_i, "(")) {
                ++depth;
            } else if (punct(_i, ")")) {
                if (depth > 0)
                    --depth;
            } else if (punct(_i, ",") && depth == 0) {
                expectName = true;
            } else if (expectName && ident(_i) && depth == 0) {
                recordDecl(text(_i), line(_i));
                expectName = false;
            }
            ++_i;
        }
        if (!done())
            ++_i; // '}'
        skipToSemicolon();
    }

    void
    parseDeclOrFunc(const std::string &className)
    {
        std::size_t start = _i;
        std::size_t firstParen = std::string::npos;
        std::size_t eqPos = std::string::npos;
        bool sawVirtual = false;
        int paren = 0, angle = 0;
        std::size_t j = _i;

        while (j < size()) {
            const std::string &t = text(j);
            if (t == "virtual") {
                sawVirtual = true;
            } else if (t == "operator" && ident(j)) {
                // Skip the operator symbol so `operator<<` is not
                // mistaken for template-angle opens (which would
                // hide the function body from the scan).
                ++j;
                while (j < size() &&
                       _t[j].kind == Token::Kind::Punct &&
                       !punct(j, "(") && !punct(j, ";") &&
                       !punct(j, "{"))
                    ++j;
                continue;
            } else if (punct(j, "(")) {
                if (paren == 0 && angle == 0 &&
                    firstParen == std::string::npos &&
                    eqPos == std::string::npos)
                    firstParen = j;
                ++paren;
            } else if (punct(j, ")")) {
                if (paren > 0)
                    --paren;
            } else if (punct(j, "<") && paren == 0) {
                ++angle;
            } else if (punct(j, ">") && paren == 0) {
                if (angle > 0)
                    --angle;
            } else if (punct(j, "=") && paren == 0 && angle == 0) {
                if (eqPos == std::string::npos)
                    eqPos = j;
            } else if (punct(j, "{") && paren == 0 && angle == 0) {
                if (eqPos != std::string::npos) {
                    // Braced initializer inside `x = {...}`.
                    j = matchBrace(j);
                } else {
                    break; // candidate body or braced init
                }
            } else if (punct(j, ";") && paren == 0) {
                break;
            } else if (punct(j, "}") && paren == 0) {
                break; // enclosing scope end
            }
            ++j;
        }
        if (j >= size()) {
            _i = size();
            return;
        }
        if (punct(j, "}")) {
            _i = j;
            return;
        }
        if (punct(j, ";")) {
            // Pure declaration: name it for the symbol graph.
            std::string name;
            bool fnDecl = firstParen != std::string::npos &&
                          (eqPos == std::string::npos ||
                           eqPos > firstParen);
            if (fnDecl) {
                std::string classQual;
                bool isDtor = false;
                extractFuncName(firstParen, start, name, classQual,
                                isDtor);
            } else if (!className.empty()) {
                // Data members are accessed through an object, never
                // by bare name from another file; exporting them
                // would only pollute the symbol graph (`pair`, `x`).
                name.clear();
            } else {
                std::size_t limit =
                    eqPos == std::string::npos ? j : eqPos;
                for (std::size_t k = limit; k-- > start;) {
                    if (punct(k, "]")) {
                        int depth = 0;
                        while (k > start) {
                            if (punct(k, "]"))
                                ++depth;
                            else if (punct(k, "[") && --depth == 0)
                                break;
                            --k;
                        }
                        continue;
                    }
                    if (ident(k) && !isCallKeyword(text(k))) {
                        name = text(k);
                        break;
                    }
                }
            }
            if (!name.empty() && name != "operator")
                recordDecl(name, line(start));
            _i = j + 1;
            return;
        }

        // `{` at top level without `=`: function body, or a braced
        // variable initializer (`int x{1};`) when no parameter list
        // was seen.
        if (firstParen == std::string::npos) {
            std::size_t close = matchBrace(j);
            if (className.empty())
                for (std::size_t k = j; k-- > start;)
                    if (ident(k) && !isCallKeyword(text(k))) {
                        recordDecl(text(k), line(start));
                        break;
                    }
            _i = close < size() ? close + 1 : size();
            skipToSemicolon();
            return;
        }

        FuncDef f;
        bool isDtor = false;
        std::string classQual;
        extractFuncName(firstParen, start, f.name, classQual, isDtor);
        f.className = classQual.empty() ? className : classQual;
        f.isDtor = isDtor;
        f.isCtor = !f.className.empty() && f.name == f.className;
        f.isVirtual = sawVirtual;
        f.line = line(firstParen);
        f.paramOpen = firstParen;
        f.bodyFirst = j;
        _i = j + 1;
        f.body = parseBlock();
        f.bodyLast = _i > 0 ? _i - 1 : 0;
        if (!f.name.empty())
            recordDecl(f.name, f.line);
        finalize(std::move(f));
    }

    void
    parseScope(const std::string &className, bool untilBrace)
    {
        while (!done()) {
            const std::string &t = text(_i);
            if (punct(_i, "}")) {
                ++_i;
                if (untilBrace)
                    return;
                continue;
            }
            if (punct(_i, ";")) {
                ++_i;
                continue;
            }
            if (t == "namespace") {
                ++_i;
                while (ident(_i) || punct(_i, "::"))
                    ++_i;
                if (punct(_i, "{")) {
                    ++_i;
                    parseScope("", true);
                } else {
                    skipToSemicolon(); // namespace alias
                }
                continue;
            }
            if (t == "extern" && punct(_i + 1, "{")) {
                _i += 2; // extern "C" { — the literal is stripped
                parseScope(className, true);
                continue;
            }
            if (t == "class" || t == "struct" || t == "union") {
                // `struct Foo x;` / `class Foo *p` declarators are
                // rare at audited scopes; treat every head as a
                // definition or forward declaration.
                parseClassLike(className);
                continue;
            }
            if (t == "enum") {
                parseEnum();
                continue;
            }
            if (t == "using") {
                ++_i;
                if (text(_i) == "namespace") {
                    skipToSemicolon();
                    continue;
                }
                if (ident(_i) && punct(_i + 1, "=")) {
                    recordDecl(text(_i), line(_i)); // alias
                    skipToSemicolon();
                    continue;
                }
                // `using ns::name;` imports (re-exports) the name.
                std::string last;
                int ln = line(_i);
                while (!done() && !punct(_i, ";") &&
                       !punct(_i, "}")) {
                    if (ident(_i))
                        last = text(_i);
                    ++_i;
                }
                if (punct(_i, ";"))
                    ++_i;
                recordDecl(last, ln);
                continue;
            }
            if (t == "typedef") {
                std::size_t b = _i;
                skipToSemicolon();
                std::size_t e = _i > 0 ? _i - 1 : 0;
                for (std::size_t k = e; k-- > b;) {
                    if (punct(k, "]"))
                        continue;
                    if (punct(k, "[")) {
                        continue;
                    }
                    if (ident(k)) {
                        recordDecl(text(k), line(b));
                        break;
                    }
                    break;
                }
                continue;
            }
            if (t == "template") {
                ++_i;
                if (punct(_i, "<"))
                    skipAngles();
                continue;
            }
            if (t == "static_assert") {
                skipToSemicolon();
                continue;
            }
            if (t == "friend") {
                ++_i;
                continue;
            }
            if ((t == "public" || t == "private" ||
                 t == "protected") &&
                punct(_i + 1, ":")) {
                _i += 2;
                continue;
            }
            std::size_t before = _i;
            parseDeclOrFunc(className);
            if (_i == before)
                ++_i; // never stall
        }
    }
};

} // namespace

bool
freeCallContext(const std::vector<Token> &toks, std::size_t i)
{
    if (i == 0)
        return true;
    const std::string &prev = at(toks, i - 1);
    if (prev == "." || prev == "->")
        return false; // member call
    if (prev == "::") {
        // std::rand( / ::rand( are the banned spellings;
        // SomeClass::time( is someone's own static.
        if (i < 2)
            return true;
        const std::string &q = at(toks, i - 2);
        return q == "std" || !isIdent(toks, i - 2);
    }
    if (isIdent(toks, i - 1))
        return prev == "return" || prev == "co_return" ||
               prev == "co_await" || prev == "case";
    return true; // after `;`, `{`, `(`, `,`, `=`, operators, ...
}

ParsedFile
parseFile(const LexedFile &lexed)
{
    return Parser(lexed).run();
}

} // namespace ot::check

#include "check/summaries.hh"

#include <algorithm>

namespace ot::check {

namespace {

/** Is `name` one of the accounting begin/end calls themselves?  Those
 *  call sites are already counted as events; resolving them as
 *  project calls would double-count. */
bool
isPairName(const std::string &name)
{
    for (std::size_t p = 0; p < kNPairs; ++p)
        if (name == kPairs[p].begin || name == kPairs[p].end)
            return true;
    return false;
}

class Builder;

/**
 * Path-sensitive net-delta evaluator for one function body.  Like the
 * diagnostic PhaseFlow, a state is the vector of counts per pair and
 * branching forks the state set — but counts may go negative (a
 * closer helper nets -1) and nothing is reported: the output is the
 * set of exit nets per pair.  Call sites fold in callee deltas
 * resolved through the Builder (recursively, memoized).
 */
class DeltaFlow
{
  public:
    DeltaFlow(Builder &b) : _b(b) {}

    /** Evaluate `f` and derive its summary. */
    FuncSummary evaluate(const FuncDef &f);

  private:
    using State = std::array<int, kNPairs>;
    using States = std::set<State>;

    struct Flow
    {
        States normal, brk, cont;
    };

    static constexpr int kMaxNet = 8;
    static constexpr std::size_t kMaxStates = 32;

    Builder &_b;
    bool _bailed = false;
    std::array<bool, kNPairs> _sawTop{};
    std::array<std::set<int>, kNPairs> _exitNets;

    void recordExit(const States &in);
    States apply(const States &in, const Stmt &s);
    static States merge(const States &a, const States &b);
    Flow eval(const Stmt &s, const States &in);
};

/** Memoized-DFS summary construction over the run's definitions. */
class Builder
{
  public:
    explicit Builder(const std::vector<FileContext> &ctxs)
    {
        for (const FileContext &ctx : ctxs) {
            bool srcLayer = !allowedIncludes(ctx.layer).empty();
            for (const FuncDef &f : ctx.parsed.funcs) {
                for (const CallSite &c : f.calls)
                    _table.calledNames.insert(c.name);
                if (srcLayer && !f.name.empty())
                    _table.byName[f.name].push_back(&f);
            }
        }
    }

    SummaryTable
    build()
    {
        for (const auto &entry : _table.byName)
            for (const FuncDef *f : entry.second)
                summaryOf(f);
        return std::move(_table);
    }

    /** Delta one call to `name` applies for pair `p` — recursing into
     *  candidate summaries; an in-progress candidate means recursion
     *  and yields Top. */
    PairDelta
    callDelta(const std::string &name, std::size_t p)
    {
        if (isPairName(name))
            return {PairDelta::Kind::Known, 0};
        auto it = _table.byName.find(name);
        if (it == _table.byName.end())
            return {PairDelta::Kind::Known, 0};
        bool first = true;
        PairDelta agreed{PairDelta::Kind::Known, 0};
        for (const FuncDef *cand : it->second) {
            // RAII ctor/dtor deltas are the object's invariant, never
            // applied at call sites.
            if (cand->isCtor || cand->isDtor)
                return {PairDelta::Kind::Known, 0};
            if (_state[cand] == kInProgress)
                return {PairDelta::Kind::Top, 0};
            const FuncSummary &s = summaryOf(cand);
            const PairDelta &d = s.pairs[p];
            if (d.kind == PairDelta::Kind::Top)
                return {PairDelta::Kind::Top, 0};
            if (d.kind == PairDelta::Kind::Inconsistent)
                // The candidate is wrong on some path and the
                // intraprocedural rule flags it there; for the caller
                // it contributes nothing (pre-summary behavior).
                return {PairDelta::Kind::Known, 0};
            if (first) {
                agreed = d;
                first = false;
            } else if (d.net != agreed.net) {
                return {PairDelta::Kind::Top, 0};
            }
        }
        return agreed;
    }

  private:
    friend class DeltaFlow;

    static constexpr int kInProgress = 1;
    static constexpr int kDone = 2;

    SummaryTable _table;
    std::map<const FuncDef *, int> _state;

    const FuncSummary &
    summaryOf(const FuncDef *f)
    {
        auto it = _table.funcs.find(f);
        if (it != _table.funcs.end() && _state[f] == kDone)
            return it->second;
        _state[f] = kInProgress;
        ++_table.evaluations;
        FuncSummary s = DeltaFlow(*this).evaluate(*f);
        _state[f] = kDone;
        return _table.funcs[f] = s;
    }
};

FuncSummary
DeltaFlow::evaluate(const FuncDef &f)
{
    States entry;
    entry.insert(State{});
    Flow fl = eval(f.body, entry);
    States end = merge(merge(fl.normal, fl.brk), fl.cont);
    recordExit(end);

    FuncSummary out;
    for (std::size_t p = 0; p < kNPairs; ++p) {
        if (_bailed || _sawTop[p]) {
            out.pairs[p] = {PairDelta::Kind::Top, 0};
        } else if (_exitNets[p].empty()) {
            // Every path throws/aborts: nothing reaches the caller.
            out.pairs[p] = {PairDelta::Kind::Known, 0};
        } else if (_exitNets[p].size() == 1) {
            out.pairs[p] = {PairDelta::Kind::Known,
                            *_exitNets[p].begin()};
        } else {
            out.pairs[p] = {PairDelta::Kind::Inconsistent, 0};
        }
    }
    return out;
}

void
DeltaFlow::recordExit(const States &in)
{
    for (const State &s : in)
        for (std::size_t p = 0; p < kNPairs; ++p)
            _exitNets[p].insert(s[p]);
}

DeltaFlow::States
DeltaFlow::apply(const States &in, const Stmt &s)
{
    if (s.events.empty() && s.calls.empty())
        return in;
    // Callee deltas for this statement, resolved once.
    std::array<int, kNPairs> callNet{};
    for (const CallSite &c : s.calls) {
        for (std::size_t p = 0; p < kNPairs; ++p) {
            PairDelta d = _b.callDelta(c.name, p);
            if (d.kind == PairDelta::Kind::Top)
                _sawTop[p] = true;
            else
                callNet[p] += d.net;
        }
    }
    States out;
    for (State st : in) {
        for (const PairEvent &e : s.events) {
            std::size_t p = static_cast<std::size_t>(e.pair);
            st[p] += e.begin ? 1 : -1;
        }
        for (std::size_t p = 0; p < kNPairs; ++p)
            st[p] += callNet[p];
        for (std::size_t p = 0; p < kNPairs; ++p)
            if (st[p] > kMaxNet || st[p] < -kMaxNet) {
                _bailed = true;
                return out;
            }
        out.insert(st);
    }
    if (out.size() > kMaxStates)
        _bailed = true;
    return out;
}

DeltaFlow::States
DeltaFlow::merge(const States &a, const States &b)
{
    States out = a;
    out.insert(b.begin(), b.end());
    return out;
}

DeltaFlow::Flow
DeltaFlow::eval(const Stmt &s, const States &in)
{
    Flow f;
    if (_bailed || in.empty())
        return f;
    switch (s.kind) {
    case Stmt::Kind::Seq: {
        States cur = in;
        for (const Stmt &c : s.children) {
            Flow cf = eval(c, cur);
            cur = cf.normal;
            f.brk = merge(f.brk, cf.brk);
            f.cont = merge(f.cont, cf.cont);
            if (_bailed)
                return f;
        }
        f.normal = cur;
        return f;
    }
    case Stmt::Kind::Simple:
        f.normal = apply(in, s);
        return f;
    case Stmt::Kind::Return:
        recordExit(apply(in, s));
        return f;
    case Stmt::Kind::Exit:
        // throw/abort: nothing reaches the caller's fall-through.
        apply(in, s);
        return f;
    case Stmt::Kind::Break:
        f.brk = in;
        return f;
    case Stmt::Kind::Continue:
        f.cont = in;
        return f;
    case Stmt::Kind::If: {
        States head = apply(in, s);
        Flow t = s.children.empty() ? Flow{head, {}, {}}
                                    : eval(s.children[0], head);
        Flow e = (s.hasElse && s.children.size() > 1)
                     ? eval(s.children[1], head)
                     : Flow{head, {}, {}};
        f.normal = merge(t.normal, e.normal);
        f.brk = merge(t.brk, e.brk);
        f.cont = merge(t.cont, e.cont);
        return f;
    }
    case Stmt::Kind::Loop: {
        States head = s.isDoWhile ? in : apply(in, s);
        Flow b = s.children.empty() ? Flow{head, {}, {}}
                                    : eval(s.children[0], head);
        States afterOne = merge(b.normal, b.cont);
        if (s.isDoWhile)
            afterOne = apply(afterOne, s);
        // Zero iterations, one-plus iterations, or a break out.  A
        // non-neutral iteration makes the exits disagree and the
        // summary lands on Inconsistent by itself.
        f.normal = merge(
            merge(s.isDoWhile ? States{} : head, afterOne), b.brk);
        return f;
    }
    case Stmt::Kind::Switch: {
        States head = apply(in, s);
        States exitNormal = s.hasDefault ? States{} : head;
        States carry;
        for (const Stmt &sec : s.children) {
            Flow cf = eval(sec, merge(head, carry));
            carry = cf.normal;
            exitNormal = merge(exitNormal, cf.brk);
            f.cont = merge(f.cont, cf.cont);
            if (_bailed)
                return f;
        }
        f.normal = merge(exitNormal, carry);
        return f;
    }
    case Stmt::Kind::Try: {
        for (std::size_t i = 0; i < s.children.size(); ++i) {
            Flow cf = eval(s.children[i], in);
            f.normal = merge(f.normal, cf.normal);
            f.brk = merge(f.brk, cf.brk);
            f.cont = merge(f.cont, cf.cont);
            if (_bailed)
                return f;
        }
        if (s.children.empty())
            f.normal = in;
        return f;
    }
    }
    f.normal = in;
    return f;
}

} // namespace

PairDelta
SummaryTable::callDelta(const std::string &name, std::size_t p) const
{
    if (isPairName(name))
        return {PairDelta::Kind::Known, 0};
    auto it = byName.find(name);
    if (it == byName.end())
        return {PairDelta::Kind::Known, 0};
    bool first = true;
    PairDelta agreed{PairDelta::Kind::Known, 0};
    for (const FuncDef *cand : it->second) {
        if (cand->isCtor || cand->isDtor)
            return {PairDelta::Kind::Known, 0};
        auto fit = funcs.find(cand);
        if (fit == funcs.end())
            return {PairDelta::Kind::Top, 0};
        const PairDelta &d = fit->second.pairs[p];
        if (d.kind == PairDelta::Kind::Top)
            return {PairDelta::Kind::Top, 0};
        if (d.kind == PairDelta::Kind::Inconsistent)
            return {PairDelta::Kind::Known, 0};
        if (first) {
            agreed = d;
            first = false;
        } else if (d.net != agreed.net) {
            return {PairDelta::Kind::Top, 0};
        }
    }
    return agreed;
}

SummaryTable
buildSummaries(const std::vector<FileContext> &ctxs)
{
    return Builder(ctxs).build();
}

} // namespace ot::check

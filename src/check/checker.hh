/**
 * @file
 * otcheck driver: file collection, rule dispatch, rendering.
 *
 * The checker walks src/, tools/ and bench/ under a repo root (and/or
 * the translation units named in a compile_commands.json) and runs
 * every rule over the whole file set at once — the cross-file rules
 * (hotpath-propagation, include-hygiene) need the full project in
 * view.  File order, diagnostic order and all output formats are
 * deterministic — the checker holds itself to the same standard it
 * enforces.
 *
 * A baseline file (one `rule path` pair per line, `#` comments) mutes
 * known pre-existing findings so new rules can land strict on new
 * code without a big-bang cleanup; the policy (enforced by tests, not
 * here) is that src/ entries are forbidden — only the app-level
 * trees may carry debt.
 */

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/rules.hh"

namespace ot::check {

/** One input file: repo-relative path plus its content. */
struct SourceFile
{
    std::string path;
    std::string source;
};

/** Everything one run produced. */
struct Report
{
    std::vector<std::string> files; ///< repo-relative, sorted
    std::vector<Diagnostic> diagnostics;
};

/** Known findings to mute: (rule, file) pairs. */
struct Baseline
{
    std::set<std::pair<std::string, std::string>> entries;
};

/** One cached per-TU result: the content hash the single-file rule
 *  pass ran against and the raw findings it produced. */
struct CacheEntry
{
    std::uint64_t hash = 0;
    std::vector<Diagnostic> diags;
};

/**
 * Incremental analysis cache, keyed by input path.  Only the
 * single-file rule pass is cached: a TU whose content hash is
 * unchanged reuses its recorded findings, while the cross-file
 * passes always re-run over the full context set — they depend on
 * every file, so caching them per-TU would be unsound.  The on-disk
 * form is stamped with a format version and the rule-catalog size;
 * either changing invalidates the whole cache.
 */
struct AnalysisCache
{
    std::map<std::string, CacheEntry> entries;
};

/** FNV-1a 64-bit content hash. */
std::uint64_t contentHash(const std::string &source);

/** Load a cache file; missing, unreadable or stamp-mismatched files
 *  yield an empty cache (i.e. a cold run). */
AnalysisCache loadAnalysisCache(const std::string &path);

/** Persist the cache (deterministic order).  False on I/O failure. */
bool saveAnalysisCache(const std::string &path,
                       const AnalysisCache &cache);

/** Work and wall-time counters for one run (--stats).  Timing uses
 *  the host clock, which is why the check layer is exempt from the
 *  determinism scope: stats are diagnostics about the checker, never
 *  part of a replayed result. */
struct RunStats
{
    std::size_t files = 0;
    std::size_t functionsAnalyzed = 0;
    std::size_t summaryEvaluations = 0; ///< accounting fixpoint work
    std::size_t taintRounds = 0;        ///< taint fixpoint sweeps
    std::size_t cacheHits = 0;   ///< TUs reusing cached file rules
    std::size_t cacheMisses = 0; ///< TUs (re)analyzed this run
    double lexParseMs = 0.0;  ///< lex + parse, all files
    double fileRulesMs = 0.0; ///< single-file rule passes
    double projectRulesMs = 0.0; ///< cross-file passes (summaries,
                                 ///< taint, lane-safety, graphs)
    double totalMs = 0.0;
};

/** Run the full pipeline (lex → parse → file rules → project rules →
 *  allows) over an in-memory file set.  A fixture-path marker in a
 *  source re-classifies that file under the path it names (used by
 *  the fixture corpus).  Diagnostics come back sorted by
 *  (file, line, rule).  With `cache`, unchanged TUs skip the
 *  single-file pass and the cache is updated in place (entries for
 *  files not in this run are dropped). */
Report checkProject(const std::vector<SourceFile> &files,
                    RunStats *stats = nullptr,
                    AnalysisCache *cache = nullptr);

/** Single-file convenience over checkProject. */
std::vector<Diagnostic> checkSource(const std::string &path,
                                    const std::string &source);

/** Read and check one on-disk file; `displayPath` names it in
 *  diagnostics and layer classification. */
std::vector<Diagnostic> checkFile(const std::string &filePath,
                                  const std::string &displayPath);

/**
 * Collect the audit set under `root`: every *.cc / *.hh beneath
 * root/src, root/tools and root/bench, unioned with any file listed
 * in `compileCommandsPath` (may be empty) that lies in those trees.
 * Returned paths are repo-relative and sorted.
 */
std::vector<std::string>
collectFiles(const std::string &root,
             const std::string &compileCommandsPath);

/** Check every file in `files` (repo-relative, resolved against
 *  `root`) as one project. */
Report checkTree(const std::string &root,
                 const std::vector<std::string> &files,
                 RunStats *stats = nullptr,
                 AnalysisCache *cache = nullptr);

/** Parse a baseline file; a missing file yields an empty baseline. */
Baseline loadBaseline(const std::string &path);

/** Drop diagnostics whose (rule, file) pair the baseline carries.
 *  Returns how many were muted. */
std::size_t applyBaseline(const Baseline &baseline, Report &report);

/** `file:line: error: [rule] message` lines plus a summary line. */
std::string renderText(const Report &report);

/** Machine-readable form: a JSON array of diagnostic objects. */
std::string renderJson(const Report &report);

/** Human-readable stats block (one `key: value` per line). */
std::string renderStatsText(const RunStats &stats);

/** Stats as one JSON object (stable key order, trailing newline). */
std::string renderStatsJson(const RunStats &stats);

} // namespace ot::check

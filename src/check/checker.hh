/**
 * @file
 * otcheck driver: file collection, rule dispatch, rendering.
 *
 * The checker walks src/ and tools/ under a repo root (and/or the
 * translation units named in a compile_commands.json) and runs every
 * rule over every file.  File order, diagnostic order and both output
 * formats are deterministic — the checker holds itself to the same
 * standard it enforces.
 */

#pragma once

#include <string>
#include <vector>

#include "check/rules.hh"

namespace ot::check {

/** Everything one run produced. */
struct Report
{
    std::vector<std::string> files; ///< repo-relative, sorted
    std::vector<Diagnostic> diagnostics;
};

/** Run all rules over in-memory source presented as `path`.  A
 *  fixture-path marker in the source re-classifies the file under
 *  the path it names (used by the fixture corpus). */
std::vector<Diagnostic> checkSource(const std::string &path,
                                    const std::string &source);

/** Read and check one on-disk file; `displayPath` names it in
 *  diagnostics and layer classification. */
std::vector<Diagnostic> checkFile(const std::string &filePath,
                                  const std::string &displayPath);

/**
 * Collect the audit set under `root`: every *.cc / *.hh beneath
 * root/src and root/tools, unioned with any file listed in
 * `compileCommandsPath` (may be empty) that lies in those trees.
 * Returned paths are repo-relative and sorted.
 */
std::vector<std::string>
collectFiles(const std::string &root,
             const std::string &compileCommandsPath);

/** Check every file in `files` (repo-relative, resolved against
 *  `root`). */
Report checkTree(const std::string &root,
                 const std::vector<std::string> &files);

/** `file:line: error: [rule] message` lines plus a summary line. */
std::string renderText(const Report &report);

/** Machine-readable form: a JSON array of diagnostic objects. */
std::string renderJson(const Report &report);

} // namespace ot::check

/**
 * @file
 * C++ token scanner for otcheck.
 *
 * otcheck's rules work on a token stream, not an AST: the invariants
 * they enforce (banned identifiers, include edges, call pairing) are
 * all visible at the lexical level, and a lexer has no build-flag or
 * header-resolution dependencies, so the checker runs in milliseconds
 * over the whole tree and never disagrees with the compiler about
 * what a translation unit is.
 *
 * The scanner strips comments, string/char literals (including raw
 * strings) and preprocessor directives from the token stream, so a
 * banned name inside a string or a macro definition is never a false
 * positive.  Three pieces of comment/preprocessor content *are*
 * retained, because the rules need them:
 *
 *   - `#include` targets, for the layering rule;
 *   - allow(rule): justification escape hatches;
 *   - hotpath and fixture-path file markers.
 *
 * (Markers are spelled with an `otcheck:` prefix; this comment avoids
 * writing them out so the checker does not read its own docs as
 * markers.  The exact syntax is in README.md and `otcheck --help`.)
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ot::check {

/** One lexical token (comments/literals/preprocessor stripped). */
struct Token
{
    enum class Kind {
        Ident,  ///< identifier or keyword
        Number, ///< numeric literal
        Punct,  ///< punctuation; `::` and `->` are single tokens
    };

    Kind kind = Kind::Punct;
    std::string text;
    int line = 1;
};

/** One `#include` directive. */
struct Include
{
    std::string path; ///< text between the delimiters
    int line = 1;
    bool angled = false; ///< `<...>` rather than `"..."`
};

/** One allow(rule): justification escape-hatch marker. */
struct Allow
{
    std::string rule;          ///< rule id inside the parentheses
    std::string justification; ///< text after the closing `):`
    int line = 1;              ///< line the marker text sits on
};

/** One `#define` directive (object- or function-like). */
struct Define
{
    std::string name;
    int line = 1;
};

/** One string literal, retained out-of-band.  The token stream stays
 *  literal-free (no rule can false-positive on string contents), but
 *  the contract rules need registry names, which are string literals
 *  at the registration call sites. */
struct StrLit
{
    std::string text; ///< contents between the quotes, unescaped raw
    int line = 1;
};

/** One structural marker attached to the next declaration. */
struct Marker
{
    int line = 1; ///< line the marker text sits on
};

/** A file reduced to what the rules consume. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Include> includes;
    std::vector<Allow> allows;
    std::vector<Define> defines;
    /** Identifiers appearing inside preprocessor directive bodies
     *  (`#if FOO`, `#define A B`); the include-hygiene rule counts
     *  them as uses even though directives produce no tokens. */
    std::vector<std::string> ppIdents;
    /** String literals with their lines, in source order (contents
     *  are excluded from `tokens`; see StrLit). */
    std::vector<StrLit> strings;
    /** shared(post-build) markers: each flags the class defined at or
     *  after the marker line as immutable once construction ends. */
    std::vector<Marker> sharedMarkers;
    /** pure markers: each flags the function whose body starts at or
     *  after the marker line as side-effect-free. */
    std::vector<Marker> pureMarkers;
    bool hotpath = false;    ///< file carries the hotpath marker
    std::string fixturePath; ///< fixture-path override, or empty
};

/** Scan one source file.  Never fails: unterminated constructs are
 *  consumed to end-of-file, which at worst hides tokens the compiler
 *  would also reject. */
LexedFile lex(const std::string &source);

} // namespace ot::check

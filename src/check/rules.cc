#include "check/rules.hh"

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "check/callgraph.hh"
#include "check/contracts.hh"
#include "check/dataflow.hh"
#include "check/summaries.hh"
#include "check/symgraph.hh"

namespace ot::check {

namespace {

const std::vector<std::string> kNoRestriction;

/**
 * The layer DAG, as observed includes: layer → layers it may include.
 * Kept in one table so DESIGN.md, this file and the fixtures can be
 * diffed against each other.  A layer always includes itself.
 */
const std::map<std::string, std::vector<std::string>> &
layerTable()
{
    static const std::map<std::string, std::vector<std::string>> t = {
        {"vlsi", {"vlsi"}},
        {"simd", {"simd", "vlsi"}},
        {"trace", {"trace", "vlsi"}},
        {"sim", {"sim", "trace", "vlsi"}},
        {"linalg", {"linalg", "vlsi"}},
        {"layout", {"layout", "vlsi"}},
        {"analysis", {"analysis", "vlsi"}},
        {"graph", {"graph", "linalg", "sim", "trace", "vlsi"}},
        {"otn",
         {"otn", "graph", "layout", "linalg", "sim", "simd", "trace",
          "vlsi"}},
        {"otc",
         {"otc", "otn", "graph", "layout", "linalg", "sim", "simd",
          "trace", "vlsi"}},
        {"baselines",
         {"baselines", "otn", "graph", "layout", "linalg", "sim",
          "trace", "vlsi"}},
        {"topo",
         {"topo", "baselines", "otc", "otn", "graph", "layout",
          "linalg", "sim", "trace", "vlsi"}},
        {"workload",
         {"workload", "topo", "otc", "otn", "graph", "layout", "linalg",
          "sim", "trace", "vlsi"}},
        {"scenario",
         {"scenario", "workload", "topo", "otc", "otn", "graph",
          "layout", "linalg", "sim", "trace", "vlsi"}},
        // The checker itself: standard library only, so it can never
        // deadlock on the layers it audits.
        {"check", {"check"}},
    };
    return t;
}

bool
isSrcLayer(const std::string &layer)
{
    return layerTable().count(layer) != 0;
}

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty())
                parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

/** Token text at index, or "" out of range. */
const std::string &
at(const std::vector<Token> &toks, std::size_t i)
{
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
}

struct BannedName
{
    const char *name;
    bool callOnly; ///< only in free-call position `name(`
    const char *message;
    const char *hint;
};

const BannedName kDeterminismBans[] = {
    {"rand", true, "call to rand() is a nondeterminism source",
     "use ot::sim::Rng with an explicit seed"},
    {"srand", true, "call to srand() seeds global hidden state",
     "use ot::sim::Rng with an explicit seed"},
    {"random_device", false,
     "std::random_device draws entropy from the host",
     "use ot::sim::Rng with an explicit seed"},
    {"random_shuffle", false,
     "std::random_shuffle uses unspecified global randomness",
     "shuffle with ot::sim::Rng-driven std::swap loop"},
    {"time", true, "call to time() reads the wall clock",
     "model time lives in sim::TimeAccountant::now()"},
    {"clock", true, "call to clock() reads host CPU time",
     "model time lives in sim::TimeAccountant::now()"},
    {"clock_gettime", false, "clock_gettime() reads the wall clock",
     "model time lives in sim::TimeAccountant::now()"},
    {"gettimeofday", false, "gettimeofday() reads the wall clock",
     "model time lives in sim::TimeAccountant::now()"},
    {"system_clock", false, "std::chrono clocks read host time",
     "model time lives in sim::TimeAccountant::now()"},
    {"steady_clock", false, "std::chrono clocks read host time",
     "model time lives in sim::TimeAccountant::now()"},
    {"high_resolution_clock", false,
     "std::chrono clocks read host time",
     "model time lives in sim::TimeAccountant::now()"},
    {"getpid", false, "getpid() varies run to run",
     "derive ids from loop indices, not the host"},
    {"pthread_self", false, "pthread_self() is host-thread-dependent",
     "lane identity must come from the dispatch index"},
    {"get_id", false,
     "thread ids are host-dependent and vary with OT_HOST_THREADS",
     "lane identity must come from the dispatch index"},
    {"unordered_map", false,
     "std::unordered_map iteration order is unspecified",
     "use std::map or a sorted vector of pairs"},
    {"unordered_set", false,
     "std::unordered_set iteration order is unspecified",
     "use std::set or a sorted vector"},
    {"unordered_multimap", false,
     "std::unordered_multimap iteration order is unspecified",
     "use std::multimap or a sorted vector of pairs"},
    {"unordered_multiset", false,
     "std::unordered_multiset iteration order is unspecified",
     "use std::multiset or a sorted vector"},
    {"splitmix64", true,
     "raw splitmix64 stream outside the sanctioned PRNG wrappers",
     "draw through ot::sim::Rng or ot::scenario::StreamRng; the only "
     "allowed raw call sites live in src/scenario/prng.hh"},
};

const BannedName kHotpathBans[] = {
    {"virtual", false, "virtual dispatch in a hotpath file",
     "use flat value types (cf. otn::Sel / otc::CSel)"},
    {"new", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"malloc", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"calloc", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"realloc", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"make_unique", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"make_shared", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
};

void
emit(std::vector<Diagnostic> &out, const FileContext &ctx, int line,
     const char *rule, const std::string &message,
     const std::string &hint)
{
    Diagnostic d;
    d.file = ctx.path;
    d.line = line;
    d.rule = rule;
    d.message = message;
    d.hint = hint;
    out.push_back(std::move(d));
}

void
runDeterminism(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    const auto &toks = ctx.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident)
            continue;
        for (const BannedName &ban : kDeterminismBans) {
            if (toks[i].text != ban.name)
                continue;
            if (ban.callOnly &&
                !(at(toks, i + 1) == "(" && freeCallContext(toks, i)))
                continue;
            emit(out, ctx, toks[i].line, "determinism", ban.message,
                 ban.hint);
        }

        // Address-keyed associative containers: std::map/std::set
        // with a pointer in the key type iterate in address order.
        if ((toks[i].text == "map" || toks[i].text == "set" ||
             toks[i].text == "multimap" ||
             toks[i].text == "multiset") &&
            at(toks, i - 1) == "::" && at(toks, i - 2) == "std" &&
            at(toks, i + 1) == "<") {
            int depth = 0;
            for (std::size_t j = i + 1;
                 j < toks.size() && j < i + 64; ++j) {
                const std::string &t = toks[j].text;
                if (t == "<")
                    ++depth;
                else if (t == ">") {
                    if (--depth == 0)
                        break;
                } else if (t == "," && depth == 1) {
                    break; // end of the key type
                } else if (t == ";" || t == "{") {
                    break; // not a template argument list after all
                } else if (t == "*") {
                    emit(out, ctx, toks[j].line, "determinism",
                         "pointer-keyed std::" + toks[i].text +
                             " iterates in address order",
                         "key by a stable index or id instead");
                    break;
                }
            }
        }
    }
}

void
runLayering(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    bool underSrc = false;
    for (const std::string &part : splitPath(ctx.path))
        if (part == "src")
            underSrc = true;

    const bool restricted = isSrcLayer(ctx.layer);
    const auto &allowed =
        restricted ? layerTable().at(ctx.layer) : kNoRestriction;

    for (const Include &inc : ctx.lexed.includes) {
        std::size_t slash = inc.path.find('/');
        if (slash == std::string::npos)
            continue; // system or same-directory include
        std::string dir = inc.path.substr(0, slash);

        if (dir == "orthotree") {
            if (underSrc)
                emit(out, ctx, inc.line, "layering",
                     "umbrella include \"orthotree/...\" from inside "
                     "src/",
                     "include the specific layer header instead");
            continue;
        }
        if (!restricted || layerTable().count(dir) == 0)
            continue;
        if (std::find(allowed.begin(), allowed.end(), dir) ==
            allowed.end())
            emit(out, ctx, inc.line, "layering",
                 "layer '" + ctx.layer + "' may not include '" + dir +
                     "/" + inc.path.substr(slash + 1) + "'",
                 "allowed from '" + ctx.layer +
                     "': see the layer DAG in DESIGN.md");
    }
}

void
runHotpath(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    if (!ctx.lexed.hotpath)
        return;
    const auto &toks = ctx.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident)
            continue;
        // std::function specifically (a variable named `function` is
        // not dispatch).
        if (toks[i].text == "function" && at(toks, i - 1) == "::" &&
            at(toks, i - 2) == "std") {
            emit(out, ctx, toks[i].line, "hotpath",
                 "std::function (type-erased call) in a hotpath file",
                 "use flat value types (cf. otn::Sel / otc::CSel)");
            continue;
        }
        for (const BannedName &ban : kHotpathBans)
            if (toks[i].text == ban.name)
                emit(out, ctx, toks[i].line, "hotpath", ban.message,
                     ban.hint);
    }
}

// ---------------------------------------------------------------------
// intrinsics: raw SIMD intrinsics are confined to the simd layer
// ---------------------------------------------------------------------

/** <immintrin.h> and friends (x86), <arm_neon.h> and friends (ARM). */
bool
isIntrinsicHeader(const std::string &path)
{
    if (path.size() >= 8 &&
        path.compare(path.size() - 8, 8, "intrin.h") == 0)
        return true;
    return path == "arm_neon.h" || path == "arm_sve.h" ||
           path == "arm_acle.h";
}

/** __m256i / __m128d / __m512 ...: "__m" followed by a digit. */
bool
isX86VectorType(const std::string &t)
{
    return t.size() > 3 && t.compare(0, 3, "__m") == 0 &&
           t[3] >= '0' && t[3] <= '9';
}

/** uint64x2_t / float32x4_t ...: letters, digits, 'x', digits, "_t". */
bool
isNeonVectorType(const std::string &t)
{
    if (t.size() < 6 || t.compare(t.size() - 2, 2, "_t") != 0)
        return false;
    std::size_t i = 0;
    while (i < t.size() && t[i] >= 'a' && t[i] <= 'z')
        ++i;
    if (i == 0)
        return false;
    std::size_t digits = i;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9')
        ++i;
    if (i == digits || i >= t.size() || t[i] != 'x')
        return false;
    digits = ++i;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9')
        ++i;
    return i > digits && i + 2 == t.size();
}

void
runIntrinsics(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    const char *hint =
        "vector code belongs in src/simd behind the KernelTable "
        "dispatch";
    for (const Include &inc : ctx.lexed.includes)
        if (isIntrinsicHeader(inc.path))
            emit(out, ctx, inc.line, "intrinsics",
                 "intrinsic header <" + inc.path +
                     "> included outside the simd layer",
                 hint);
    const auto &toks = ctx.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident)
            continue;
        const std::string &t = toks[i].text;
        // _mm_/_mm256_/_mm512_ calls and __m128/__m256i/... types.
        if (t.compare(0, 3, "_mm") == 0 || isX86VectorType(t)) {
            emit(out, ctx, toks[i].line, "intrinsics",
                 "x86 intrinsic '" + t + "' outside the simd layer",
                 hint);
            continue;
        }
        // NEON: vaddq_u64(...)-style calls and uint64x2_t types.
        if (isNeonVectorType(t) ||
            (t[0] == 'v' && t.find("q_") != std::string::npos &&
             at(toks, i + 1) == "("))
            emit(out, ctx, toks[i].line, "intrinsics",
                 "NEON intrinsic '" + t + "' outside the simd layer",
                 hint);
    }
}

// ---------------------------------------------------------------------
// accounting: path-sensitive begin/end balance over the parsed CFG
// ---------------------------------------------------------------------

/** Sum a subtree's events per pair (begin +1, end -1). */
void
sumEvents(const Stmt &s, std::array<int, kNPairs> &net)
{
    for (const PairEvent &e : s.events)
        net[e.pair] += e.begin ? 1 : -1;
    for (const Stmt &c : s.children)
        sumEvents(c, net);
}

bool
hasEvents(const Stmt &s)
{
    if (!s.events.empty())
        return true;
    for (const Stmt &c : s.children)
        if (hasEvents(c))
            return true;
    return false;
}

/** First event line of `pair` in the subtree (begin or end per
 *  `wantBegin`), or 0. */
int
findEventLine(const Stmt &s, int pair, bool wantBegin)
{
    for (const PairEvent &e : s.events)
        if (e.pair == pair && e.begin == wantBegin)
            return e.line;
    for (const Stmt &c : s.children) {
        int l = findEventLine(c, pair, wantBegin);
        if (l)
            return l;
    }
    return 0;
}

/** RAII classification of one file's classes: a class whose ctor
 *  nets +1 and dtor nets -1 on a pair carries that pair by design. */
struct RaiiPairs
{
    std::array<bool, kNPairs> ctorOpens{};
    std::array<bool, kNPairs> dtorCloses{};

    bool
    raii(std::size_t p) const
    {
        return ctorOpens[p] && dtorCloses[p];
    }
};

std::map<std::string, RaiiPairs>
classifyRaii(const ParsedFile &parsed)
{
    std::map<std::string, RaiiPairs> out;
    for (const FuncDef &f : parsed.funcs) {
        if (f.className.empty() || (!f.isCtor && !f.isDtor))
            continue;
        std::array<int, kNPairs> net{};
        sumEvents(f.body, net);
        for (std::size_t p = 0; p < kNPairs; ++p) {
            if (f.isCtor && net[p] == 1)
                out[f.className].ctorOpens[p] = true;
            if (f.isDtor && net[p] == -1)
                out[f.className].dtorCloses[p] = true;
        }
    }
    return out;
}

/**
 * Path-sensitive evaluator for one function body.  A state is the
 * vector of open counts per pair; branching forks the state set,
 * joins union it.  Loops are evaluated for one symbolic iteration:
 * the iteration must be balance-neutral or the imbalance compounds.
 * The state set and the counts are capped; an overflow abandons the
 * function silently (conservative: no diagnostics from code too
 * tangled to prove).
 *
 * Call sites fold in interprocedural summaries: a call whose
 * candidates agree on a Known net delta applies that delta to the
 * open counts (after the statement's own events), so a helper that
 * opens a phase for its caller to close — or vice versa — is proven
 * instead of flagged.  Top/Inconsistent callees apply 0, which is
 * exactly the pre-summary behavior.
 */
class PhaseFlow
{
  public:
    PhaseFlow(const FileContext &ctx, const FuncDef &func,
              const std::array<bool, kNPairs> &skipLeak,
              const std::array<bool, kNPairs> &skipUnderflow,
              const SummaryTable &table)
        : _ctx(ctx), _func(func), _skipLeak(skipLeak),
          _skipUnderflow(skipUnderflow), _table(table)
    {
    }

    void
    run(std::vector<Diagnostic> &out)
    {
        States entry;
        entry.insert(State{});
        Flow f = eval(_func.body, entry);
        if (_bailed)
            return;
        // Whatever completes the function normally (or dangles on a
        // stray break/continue) must hold nothing open.
        States end = f.normal;
        end.insert(f.brk.begin(), f.brk.end());
        end.insert(f.cont.begin(), f.cont.end());
        for (std::size_t p = 0; p < kNPairs; ++p) {
            if (_skipLeak[p])
                continue;
            for (const State &s : end) {
                if (s[p] <= 0)
                    continue;
                int line = _lastBeginLine[p]
                               ? _lastBeginLine[p]
                               : _func.line;
                note(p, line,
                     std::string(kPairs[p].begin) +
                         " never closed before the function ends",
                     std::string("call ") + kPairs[p].end +
                         " on every path, or use the RAII wrapper "
                         "(sim::ScopedPhase)");
                break;
            }
        }
        if (!_bailed)
            out.insert(out.end(), _diags.begin(), _diags.end());
    }

  private:
    using State = std::array<int, kNPairs>;
    using States = std::set<State>;

    struct Flow
    {
        States normal, brk, cont;
    };

    static constexpr int kMaxCount = 4;
    static constexpr std::size_t kMaxStates = 32;

    const FileContext &_ctx;
    const FuncDef &_func;
    std::array<bool, kNPairs> _skipLeak;
    std::array<bool, kNPairs> _skipUnderflow;
    const SummaryTable &_table;
    bool _bailed = false;
    std::array<int, kNPairs> _lastBeginLine{};
    std::set<std::pair<std::size_t, int>> _noted; // (pair, line)
    std::vector<Diagnostic> _diags;

    void
    note(std::size_t pair, int line, const std::string &message,
         const std::string &hint)
    {
        if (!_noted.insert({pair, line}).second)
            return;
        emit(_diags, _ctx, line, "accounting", message, hint);
    }

    States
    apply(const States &in, const Stmt &stmt)
    {
        // Callee deltas for this statement, resolved once from the
        // summary table; Top/Inconsistent candidates contribute 0.
        struct CallDelta
        {
            std::array<int, kNPairs> net{};
            const CallSite *site = nullptr;
        };
        std::vector<CallDelta> callDeltas;
        for (const CallSite &c : stmt.calls) {
            CallDelta cd;
            cd.site = &c;
            bool any = false;
            for (std::size_t p = 0; p < kNPairs; ++p) {
                PairDelta d = _table.callDelta(c.name, p);
                if (d.kind == PairDelta::Kind::Known && d.net != 0) {
                    cd.net[p] = d.net;
                    any = true;
                }
            }
            if (any)
                callDeltas.push_back(cd);
        }
        if (stmt.events.empty() && callDeltas.empty())
            return in;

        States out;
        for (State s : in) {
            for (const PairEvent &e : stmt.events) {
                std::size_t p = static_cast<std::size_t>(e.pair);
                if (e.begin) {
                    if (s[p] < kMaxCount)
                        ++s[p];
                    _lastBeginLine[p] = e.line;
                } else if (s[p] > 0) {
                    --s[p];
                } else if (!_skipUnderflow[p]) {
                    note(p, e.line,
                         std::string(kPairs[p].end) +
                             " without a matching " + kPairs[p].begin +
                             " in this function",
                         "balance the pair within one function body");
                }
            }
            for (const CallDelta &cd : callDeltas) {
                for (std::size_t p = 0; p < kNPairs; ++p) {
                    if (cd.net[p] > 0) {
                        s[p] = std::min(s[p] + cd.net[p], kMaxCount);
                        _lastBeginLine[p] = cd.site->line;
                    } else if (cd.net[p] < 0) {
                        if (s[p] + cd.net[p] >= 0) {
                            s[p] += cd.net[p];
                        } else {
                            if (!_skipUnderflow[p])
                                note(p, cd.site->line,
                                     "call to '" + cd.site->name +
                                         "' closes " +
                                         kPairs[p].begin +
                                         " that is not open on this "
                                         "path",
                                     "open the pair before the call, "
                                     "or balance it inside the "
                                     "callee");
                            s[p] = 0;
                        }
                    }
                }
            }
            out.insert(s);
        }
        if (out.size() > kMaxStates)
            _bailed = true;
        return out;
    }

    void
    checkReturn(const States &in, int line)
    {
        for (std::size_t p = 0; p < kNPairs; ++p) {
            if (_skipLeak[p])
                continue;
            for (const State &s : in) {
                if (s[p] <= 0)
                    continue;
                note(p, line,
                     std::string("return with ") + kPairs[p].begin +
                         " still open on this path",
                     std::string("call ") + kPairs[p].end +
                         " first, or use the RAII wrapper "
                         "(sim::ScopedPhase)");
                break;
            }
        }
    }

    static States
    merge(const States &a, const States &b)
    {
        States out = a;
        out.insert(b.begin(), b.end());
        return out;
    }

    /** One symbolic loop iteration must leave the counts unchanged,
     *  or iterations compound the imbalance. */
    void
    checkLoopCarried(const Stmt &s, const States &entry,
                     const States &afterOne)
    {
        if (afterOne.empty() || afterOne == entry)
            return;
        for (std::size_t p = 0; p < kNPairs; ++p) {
            int maxEntry = 0, maxAfter = 0;
            for (const State &st : entry)
                maxEntry = std::max(maxEntry, st[p]);
            for (const State &st : afterOne)
                maxAfter = std::max(maxAfter, st[p]);
            if (maxAfter > maxEntry) {
                int line = findEventLine(s, static_cast<int>(p), true);
                note(p, line ? line : s.line,
                     std::string(kPairs[p].begin) +
                         " opened in a loop body is still open when "
                         "the iteration ends; phases accumulate "
                         "across iterations",
                     "close the pair within the iteration, or hoist "
                     "it out of the loop");
            } else if (maxAfter < maxEntry) {
                int line =
                    findEventLine(s, static_cast<int>(p), false);
                note(p, line ? line : s.line,
                     std::string(kPairs[p].end) +
                         " in a loop body closes a phase opened "
                         "outside the loop; a later iteration "
                         "underflows",
                     "balance the pair within the iteration");
            }
        }
    }

    Flow
    eval(const Stmt &s, const States &in)
    {
        Flow f;
        if (_bailed || in.empty()) {
            return f;
        }
        switch (s.kind) {
        case Stmt::Kind::Seq: {
            States cur = in;
            for (const Stmt &c : s.children) {
                Flow cf = eval(c, cur);
                cur = cf.normal;
                f.brk = merge(f.brk, cf.brk);
                f.cont = merge(f.cont, cf.cont);
                if (_bailed)
                    return f;
            }
            f.normal = cur;
            return f;
        }
        case Stmt::Kind::Simple:
            f.normal = apply(in, s);
            return f;
        case Stmt::Kind::Return: {
            States after = apply(in, s);
            checkReturn(after, s.line);
            return f;
        }
        case Stmt::Kind::Exit:
            // throw/abort paths are exempt: the process or the
            // exception machinery owns cleanup there.
            apply(in, s);
            return f;
        case Stmt::Kind::Break:
            f.brk = in;
            return f;
        case Stmt::Kind::Continue:
            f.cont = in;
            return f;
        case Stmt::Kind::If: {
            States head = apply(in, s);
            Flow t = s.children.empty()
                         ? Flow{head, {}, {}}
                         : eval(s.children[0], head);
            Flow e = (s.hasElse && s.children.size() > 1)
                         ? eval(s.children[1], head)
                         : Flow{head, {}, {}};
            f.normal = merge(t.normal, e.normal);
            f.brk = merge(t.brk, e.brk);
            f.cont = merge(t.cont, e.cont);
            return f;
        }
        case Stmt::Kind::Loop: {
            States head =
                s.isDoWhile ? in : apply(in, s);
            Flow b = s.children.empty()
                         ? Flow{head, {}, {}}
                         : eval(s.children[0], head);
            States afterOne = merge(b.normal, b.cont);
            if (s.isDoWhile)
                afterOne = apply(afterOne, s);
            checkLoopCarried(s, head, afterOne);
            // Zero iterations (head), one-plus iterations
            // (afterOne), or a break out of the body.
            f.normal = merge(merge(s.isDoWhile ? States{} : head,
                                   afterOne),
                             b.brk);
            return f;
        }
        case Stmt::Kind::Switch: {
            States head = apply(in, s);
            States exitNormal = s.hasDefault ? States{} : head;
            States carry; // fallthrough from the previous section
            for (const Stmt &sec : s.children) {
                Flow cf = eval(sec, merge(head, carry));
                carry = cf.normal;
                exitNormal = merge(exitNormal, cf.brk);
                f.cont = merge(f.cont, cf.cont);
                if (_bailed)
                    return f;
            }
            f.normal = merge(exitNormal, carry);
            return f;
        }
        case Stmt::Kind::Try: {
            // Handlers are approximated as entered from the try
            // entry: an exception can fire before any event runs.
            for (std::size_t i = 0; i < s.children.size(); ++i) {
                Flow cf = eval(s.children[i], in);
                f.normal = merge(f.normal, cf.normal);
                f.brk = merge(f.brk, cf.brk);
                f.cont = merge(f.cont, cf.cont);
                if (_bailed)
                    return f;
            }
            if (s.children.empty())
                f.normal = in;
            return f;
        }
        }
        f.normal = in;
        return f;
    }
};

/** Does any call in `f` carry a nonzero Known delta?  Functions with
 *  no events of their own still need evaluation when a callee opens
 *  or closes on their behalf. */
bool
hasDeltaCalls(const FuncDef &f, const SummaryTable &table)
{
    for (const CallSite &c : f.calls)
        for (std::size_t p = 0; p < kNPairs; ++p) {
            PairDelta d = table.callDelta(c.name, p);
            if (d.kind == PairDelta::Kind::Known && d.net != 0)
                return true;
        }
    return false;
}

void
runAccounting(const std::vector<FileContext> &ctxs,
              const SummaryTable &table, std::vector<Diagnostic> &out)
{
    for (const FileContext &ctx : ctxs) {
        std::map<std::string, RaiiPairs> raii =
            classifyRaii(ctx.parsed);
        for (const FuncDef &f : ctx.parsed.funcs) {
            if (!hasEvents(f.body) && !hasDeltaCalls(f, table))
                continue;
            std::array<bool, kNPairs> skipLeak{};
            std::array<bool, kNPairs> skipUnderflow{};
            auto it = raii.find(f.className);
            if (it != raii.end()) {
                for (std::size_t p = 0; p < kNPairs; ++p) {
                    if (!it->second.raii(p))
                        continue;
                    // The ctor's +1 / dtor's -1 IS the pairing: the
                    // open phase is the object's invariant, not a
                    // leak.
                    if (f.isCtor)
                        skipLeak[p] = true;
                    if (f.isDtor)
                        skipUnderflow[p] = true;
                }
            }
            // Opener/closer helpers: a named non-RAII function whose
            // exit paths agree on a nonzero net, and whose name is
            // actually called somewhere in the run, balances across
            // its call edge — the callers' evaluations (which fold in
            // the summary delta) prove the pairing instead.
            if (!f.isCtor && !f.isDtor && !f.name.empty() &&
                table.calledNames.count(f.name)) {
                auto sit = table.funcs.find(&f);
                if (sit != table.funcs.end()) {
                    for (std::size_t p = 0; p < kNPairs; ++p) {
                        const PairDelta &d = sit->second.pairs[p];
                        if (d.kind != PairDelta::Kind::Known)
                            continue;
                        if (d.net > 0)
                            skipLeak[p] = true;
                        else if (d.net < 0)
                            skipUnderflow[p] = true;
                    }
                }
            }
            PhaseFlow(ctx, f, skipLeak, skipUnderflow, table)
                .run(out);
        }
    }
}

// ---------------------------------------------------------------------
// unreachable: statements after an unconditional exit
// ---------------------------------------------------------------------

bool
terminates(const Stmt &s)
{
    switch (s.kind) {
    case Stmt::Kind::Return:
    case Stmt::Kind::Exit:
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
        return true;
    case Stmt::Kind::Seq:
        for (const Stmt &c : s.children)
            if (terminates(c))
                return true;
        return false;
    case Stmt::Kind::If:
        return s.hasElse && s.children.size() > 1 &&
               terminates(s.children[0]) && terminates(s.children[1]);
    default:
        return false; // loops/switch/try: conservatively fall through
    }
}

void
walkUnreachable(const FileContext &ctx, const Stmt &s,
                std::vector<Diagnostic> &out)
{
    if (s.kind == Stmt::Kind::Seq) {
        bool dead = false;
        bool flagged = false;
        for (const Stmt &c : s.children) {
            if (dead && !flagged && !c.labeled) {
                emit(out, ctx, c.line, "unreachable",
                     "statement is unreachable: every path above has "
                     "already left the block",
                     "delete it, or restructure the control flow");
                flagged = true; // first casualty per block is enough
            }
            if (!dead && terminates(c))
                dead = true;
        }
    }
    for (const Stmt &c : s.children)
        walkUnreachable(ctx, c, out);
}

void
runUnreachable(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    for (const FuncDef &f : ctx.parsed.funcs)
        walkUnreachable(ctx, f.body, out);
}

// ---------------------------------------------------------------------
// hotpath-propagation: transitive hotpath cleanliness over the call
// graph
// ---------------------------------------------------------------------

void
runHotpathPropagation(const std::vector<FileContext> &ctxs,
                      const CallGraph &cg,
                      std::vector<Diagnostic> &out)
{
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        const FileContext &ctx = ctxs[i];
        if (!ctx.lexed.hotpath)
            continue;
        std::set<std::pair<int, std::string>> seen;
        for (const FuncDef &f : ctx.parsed.funcs) {
            for (const CallSite &c : f.calls) {
                auto it = cg.byName.find(c.name);
                if (it == cg.byName.end())
                    continue;
                bool anyOtherFile = false;
                bool allDirty = true;
                const CallNode *witness = nullptr;
                for (int k : it->second) {
                    const CallNode &n = cg.nodes[k];
                    if (n.file != static_cast<int>(i))
                        anyOtherFile = true;
                    if (!n.dirty) {
                        allDirty = false;
                        break;
                    }
                    if (!witness)
                        witness = &n;
                }
                // Same-file callees are already covered lexically by
                // the direct hotpath rule (the marker bans the
                // construct anywhere in the file).
                if (!anyOtherFile || !allDirty || !witness)
                    continue;
                if (!seen.insert({c.line, c.name}).second)
                    continue;
                emit(out, ctx, c.line, "hotpath-propagation",
                     "call to '" + c.name + "' reaches " +
                         witness->why,
                     "hotpath code must stay allocation- and "
                     "dispatch-free through every callee; "
                     "restructure or hoist the work");
            }
        }
    }
}

// ---------------------------------------------------------------------
// include-hygiene: unused includes and include-what-you-use
// ---------------------------------------------------------------------

std::string
pathStem(const std::string &path)
{
    std::size_t slash = path.rfind('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = base.rfind('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

/** Spell a repo-relative header path the way project code includes
 *  it (without the leading src/). */
std::string
includeSpelling(const std::string &path)
{
    if (path.compare(0, 4, "src/") == 0)
        return path.substr(4);
    return path;
}

void
runIncludeHygiene(const std::vector<FileContext> &ctxs,
                  const SymGraph &sg, std::vector<Diagnostic> &out)
{
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        const FileContext &ctx = ctxs[i];
        const FileSyms &fs = sg.files[i];

        auto anyExportMentioned = [&](int h) {
            for (const std::string &e : sg.files[h].exports)
                if (fs.mentions.count(e))
                    return true;
            return false;
        };

        // Unused includes: a resolved project include must
        // contribute at least one referenced symbol, directly or as
        // a gateway to deeper headers.
        int ownHeader = -1;
        std::set<int> direct;
        for (std::size_t k = 0; k < fs.resolvedIncludes.size();
             ++k) {
            int g = fs.resolvedIncludes[k];
            if (g < 0)
                continue;
            direct.insert(g);
            if (pathStem(ctx.path) == pathStem(ctxs[g].path))
                ownHeader = g;
        }
        for (std::size_t k = 0; k < fs.resolvedIncludes.size();
             ++k) {
            int g = fs.resolvedIncludes[k];
            if (g < 0 || g == ownHeader)
                continue;
            const FileSyms &gs = sg.files[g];
            if (gs.exports.empty())
                continue; // nothing provable about this header
            bool opExport = false;
            for (const std::string &e : gs.exports)
                if (e.compare(0, 8, "operator") == 0)
                    opExport = true;
            if (opExport)
                continue; // operators are used without being named
            if (anyExportMentioned(g))
                continue;
            bool gateway = false;
            for (int h : gs.reachable)
                if (anyExportMentioned(h)) {
                    gateway = true;
                    break;
                }
            if (gateway)
                continue;
            const Include &inc = ctx.lexed.includes[k];
            emit(out, ctx, inc.line, "include-hygiene",
                 "unused include \"" + inc.path +
                     "\": nothing it declares (directly or "
                     "transitively) is referenced",
                 "remove the include, or reference what it "
                 "declares");
        }

        // Include-what-you-use: a symbol with a unique declaring
        // header must pull that header in directly, not lean on an
        // unrelated transitive path.  The file's own header is its
        // interface and exempts everything it reaches.
        std::set<int> viaOwn;
        if (ownHeader >= 0) {
            viaOwn = sg.files[ownHeader].reachable;
            viaOwn.insert(ownHeader);
        }
        std::map<int, std::pair<int, std::string>> missing;
        for (const auto &m : fs.mentions) {
            auto it = sg.declaringHeaders.find(m.first);
            if (it == sg.declaringHeaders.end() ||
                it->second.size() != 1)
                continue;
            int h = it->second[0];
            if (h == static_cast<int>(i) || direct.count(h) ||
                viaOwn.count(h))
                continue;
            if (!fs.reachable.count(h))
                continue; // forward-declared or macro-gated
            if (fs.exports.count(m.first))
                continue; // locally (re)defined name
            auto cur = missing.find(h);
            if (cur == missing.end() ||
                m.second < cur->second.first)
                missing[h] = {m.second, m.first};
        }
        for (const auto &mh : missing) {
            emit(out, ctx, mh.second.first, "include-hygiene",
                 "'" + mh.second.second + "' is declared in \"" +
                     ctxs[mh.first].path +
                     "\" which is only included transitively",
                 "include \"" +
                     includeSpelling(ctxs[mh.first].path) +
                     "\" directly");
        }
    }
}

} // namespace

/** Line extent an allow() marker covers: from its own line through
 *  the end of the statement beginning at or after it (`;` at paren/
 *  brace depth zero, or the close of a braced definition), at least
 *  one following line, at most 20. */
std::pair<int, int>
allowExtent(const std::vector<Token> &toks, int line)
{
    const int kCap = 20;
    int last = line + 1;
    std::size_t i = 0;
    while (i < toks.size() && toks[i].line < line)
        ++i;
    if (i >= toks.size() || toks[i].line > line + kCap)
        return {line, last};
    int paren = 0, brace = 0;
    bool sawBrace = false;
    for (std::size_t j = i; j < toks.size(); ++j) {
        if (toks[j].line > line + kCap)
            return {line, line + kCap};
        const std::string &t = toks[j].text;
        if (toks[j].kind != Token::Kind::Punct) {
            last = std::max(last, toks[j].line);
            continue;
        }
        last = std::max(last, toks[j].line);
        if (t == "(") {
            ++paren;
        } else if (t == ")") {
            if (paren > 0)
                --paren;
        } else if (t == "{") {
            ++brace;
            sawBrace = true;
        } else if (t == "}") {
            if (brace == 0)
                return {line, last}; // enclosing block ended
            if (--brace == 0 && sawBrace && paren == 0)
                return {line, last}; // braced definition closed
        } else if (t == ";" && paren == 0 && brace == 0) {
            return {line, last};
        }
    }
    return {line, last};
}

std::string
classifyLayer(const std::string &path)
{
    std::vector<std::string> parts = splitPath(path);
    for (std::size_t i = 0; i + 1 < parts.size(); ++i)
        if (parts[i] == "src")
            return parts[i + 1];
    for (const std::string &p : parts)
        if (p == "tools" || p == "tests" || p == "bench" ||
            p == "examples" || p == "include")
            return p;
    return "";
}

const std::vector<std::string> &
allowedIncludes(const std::string &layer)
{
    auto it = layerTable().find(layer);
    return it == layerTable().end() ? kNoRestriction : it->second;
}

bool
inDeterminismScope(const std::string &layer)
{
    return layer == "sim" || layer == "otn" || layer == "otc" ||
           layer == "topo" || layer == "workload" ||
           layer == "scenario";
}

const std::vector<DeterminismBan> &
determinismBans()
{
    static const std::vector<DeterminismBan> bans = [] {
        std::vector<DeterminismBan> v;
        for (const BannedName &b : kDeterminismBans)
            v.push_back({b.name, b.callOnly});
        return v;
    }();
    return bans;
}

const std::vector<RuleDoc> &
ruleCatalog()
{
    // ruleIndex order — append-only (see rules.hh).
    static const std::vector<RuleDoc> catalog = {
        {"determinism",
         "No nondeterminism sources or iteration-order hazards in "
         "lane-reachable layers",
         "Flat token scan over src/sim, src/otn, src/otc, "
         "src/workload and src/scenario: banned identifiers (wall "
         "clocks, rand(), thread ids, std::unordered_*) and "
         "pointer-keyed std::map/std::set template arguments.",
         "call to rand() is a nondeterminism source",
         "only for constructs provably outside the replayed state, "
         "e.g. the sanctioned raw PRNG call sites in "
         "src/scenario/prng.hh",
         true},
        {"layering",
         "#include edges must follow the layer DAG",
         "Every project include from a src/ layer is checked against "
         "the layer DAG in DESIGN.md; umbrella includes "
         "(orthotree/...) are banned inside src/.",
         "layer 'sim' may not include 'otn/network.hh'",
         "never — fix the dependency direction instead", true},
        {"accounting",
         "beginPhase/endPhase and spanBegin/spanEnd must balance on "
         "every control-flow path",
         "Path-sensitive evaluation of each function's statement "
         "tree, with RAII wrappers recognized (ctor +1 / dtor -1) "
         "and interprocedural net-delta summaries folded in at call "
         "sites, fixpointed over the call graph (conservative Top on "
         "recursion and opaque bodies).",
         "beginPhase never closed before the function ends",
         "for pairing schemes the summary lattice cannot express, "
         "e.g. deltas routed through function pointers", true},
        {"hotpath",
         "Hotpath-marked files may not use std::function, virtual "
         "or heap allocation",
         "Flat token scan of files carrying the hotpath marker "
         "comment.",
         "heap allocation in a hotpath file",
         "only for provably cold paths inside a hotpath file "
         "(error handling, setup)", true},
        {"hotpath-propagation",
         "Hotpath functions may not reach banned constructs through "
         "any call chain in src/",
         "Dirty-function fixpoint over the project call graph: a "
         "definition using banned constructs taints every caller "
         "chain; calls from hotpath files to (all-candidate) dirty "
         "names are flagged with the witness chain.",
         "call to 'rebuild' reaches heap allocation via grow()",
         "only with a measurement showing the callee is cold at "
         "runtime", true},
        {"include-hygiene",
         "Includes must be used, and used symbols included directly",
         "Symbol graph over declared/exported names: each resolved "
         "project include must contribute a referenced symbol "
         "(directly or as a gateway), and a symbol with a unique "
         "declaring header must be included directly.",
         "unused include \"otn/mst.hh\": nothing it declares is "
         "referenced",
         "for includes kept for documentation or platform-gated "
         "code the scanner cannot see", true},
        {"unreachable",
         "No statements after an unconditional return/throw/abort",
         "Statement-tree walk: inside each block, any statement "
         "after an unconditionally terminating one (and not a label "
         "target) is dead.",
         "statement is unreachable: every path above has already "
         "left the block",
         "never — delete the dead code", true},
        {"allow-syntax",
         "allow() markers must name a known rule and carry a "
         "justification",
         "Validation of the escape markers themselves; not "
         "allowable, or escapes could suppress their own audit.",
         "otcheck:allow names unknown rule 'determinsm'", "never",
         false},
        {"unused-allow",
         "allow() markers that suppress nothing must be removed",
         "After filtering, any well-formed marker with zero "
         "suppressions is stale; not allowable, or escapes could "
         "outlive their reason.",
         "otcheck:allow(accounting) no longer suppresses anything",
         "never", false},
        {"intrinsics",
         "Raw SIMD intrinsics are confined to the simd layer; "
         "everything else goes through the KernelTable dispatch",
         "Flat scan for intrinsic headers, _mm*/__m* and NEON "
         "identifiers outside src/simd.",
         "x86 intrinsic '_mm256_add_epi64' outside the simd layer",
         "only for scalar bit-manipulation builtins misclassified "
         "as vector intrinsics", true},
        {"determinism-taint",
         "Functions reaching a raw nondeterminism source taint "
         "their callers; calls from the determinism scope into "
         "tainted out-of-scope code are flagged with the full "
         "source→sink chain",
         "Interprocedural taint over the call graph: sources are "
         "banned identifiers used outside an allow(determinism) "
         "extent; taint flows through calls and function-pointer "
         "references (all-candidate resolution); diagnosed at the "
         "boundary crossing so each defect surfaces once.",
         "call to 'jitter' reaches a nondeterminism source outside "
         "the determinism scope: jitter() → splitmix64 at "
         "src/analysis/noise.cc:12",
         "only when the tainted callee is provably outside the "
         "replayed state (logging, diagnostics)", true},
        {"lane-safety",
         "parallelFor lane lambdas may not write through shared "
         "by-reference captures without a lane-derived index",
         "Entry lambdas are found syntactically inside parallelFor "
         "argument lists; lane-derived locals are tracked from the "
         "lane parameter; direct writes (assignment, compound "
         "assignment, ++/--, mutating container methods) and "
         "by-reference passes to mutating callees (per-parameter "
         "mutation summaries, transitive) are flagged unless a "
         "lane-derived subscript isolates the slot.",
         "parallelFor lane lambda: write through shared capture "
         "'total' is not indexed by the lane parameter",
         "only for state protected by external synchronization the "
         "checker cannot see — name the lock in the justification",
         true},
        {"shared",
         "Classes marked shared(post-build) may not be mutated "
         "outside their virtual plugin API after construction",
         "Class graph with marker inheritance (marking the plugin "
         "base covers every subclass) plus the per-parameter "
         "mutation summaries: every non-API member function is "
         "audited for direct member writes, mutating container "
         "calls, members passed by reference to (all-candidate) "
         "mutating callees with a cross-TU witness, and escaping "
         "non-const references to members.",
         "shared(post-build) class 'MeshTopoMachine': member "
         "'_lanes' is mutated by 'resizeLanes' at "
         "src/topo/lanes.cc:41",
         "only for state the engine's per-machine serialization "
         "provably covers — name the synchronization in the "
         "justification",
         true},
        {"topo-contract",
         "Topology registry names must be unique and every concrete "
         "machine in a registered hierarchy must be registered",
         "Registration sites (`reg.add({\"name\", ...})` in the "
         "topo layer) are tied to their machine classes through the "
         "argument list or the factory's make_unique<...> body; "
         "duplicate names and concrete plugin-hierarchy classes no "
         "registration resolves to are diagnosed.",
         "concrete machine 'TorusMachine' is never registered in "
         "the topology registry",
         "never — register the machine or make it abstract", true},
        {"topo-fallback",
         "A registered machine must override the three accounting "
         "hooks (exchangeStepCost, broadcastCost, reduceCost)",
         "The hooks are the topology's microarchitecture "
         "description; a registered class that does not declare all "
         "three in its own body is costing itself with an "
         "ancestor's network and is flagged with the providing "
         "base named.",
         "registered machine 'OtcEmulatedTopoMachine' does not "
         "override accounting hook(s) exchangeStepCost, "
         "broadcastCost, reduceCost; it inherits the costs of "
         "'OtnTopoMachine'",
         "only when the inherited cost model is the topology's own "
         "by construction (emulation layers) — say why in the "
         "justification",
         true},
        {"sched-purity",
         "Functions marked pure (the scenario ranking functions) "
         "must be side-effect-free and determinism-clean",
         "For each marked definition (nested lambdas included): "
         "by-reference parameter mutations via the summary table "
         "(cross-TU witness), non-const static locals, and calls "
         "whose every candidate is determinism-tainted via the "
         "taint graph.",
         "pure ranking function 'pickNext': static local state "
         "survives across calls",
         "never — a ranking function that needs state is a "
         "scheduler redesign, not an escape",
         true},
    };
    return catalog;
}

const RuleDoc *
findRuleDoc(const std::string &rule)
{
    for (const RuleDoc &d : ruleCatalog())
        if (rule == d.id)
            return &d;
    return nullptr;
}

bool
knownRule(const std::string &rule)
{
    const RuleDoc *d = findRuleDoc(rule);
    return d != nullptr && d->allowable;
}

std::vector<Diagnostic>
runFileRules(const FileContext &ctx)
{
    std::vector<Diagnostic> raw;
    if (inDeterminismScope(ctx.layer))
        runDeterminism(ctx, raw);
    runLayering(ctx, raw);
    runHotpath(ctx, raw);
    if (ctx.layer != "simd")
        runIntrinsics(ctx, raw);
    runUnreachable(ctx, raw);
    return raw;
}

std::vector<Diagnostic>
runProjectRules(const std::vector<FileContext> &ctxs,
                ProjectRuleStats *stats)
{
    std::vector<Diagnostic> out;
    SymGraph sg = buildSymGraph(ctxs);
    CallGraph cg = buildCallGraph(ctxs);
    SummaryTable summaries = buildSummaries(ctxs);
    runAccounting(ctxs, summaries, out);
    runHotpathPropagation(ctxs, cg, out);
    runIncludeHygiene(ctxs, sg, out);
    std::size_t taintRounds = 0;
    runDeterminismTaint(ctxs, out, &taintRounds);
    runLaneSafety(ctxs, out);
    ClassGraph classes = buildClassGraph(ctxs);
    runTopoContracts(ctxs, classes, out);
    runSharedImmutability(ctxs, classes, out);
    runSchedPurity(ctxs, out);
    if (stats) {
        for (const FileContext &ctx : ctxs)
            stats->functionsAnalyzed += ctx.parsed.funcs.size();
        stats->summaryEvaluations = summaries.evaluations;
        stats->taintRounds = taintRounds;
    }
    return out;
}

std::vector<Diagnostic>
applyAllows(const FileContext &ctx, std::vector<Diagnostic> diags)
{
    struct Extent
    {
        int first = 0, last = 0;
        bool wellFormed = false;
        int uses = 0;
    };
    std::vector<Extent> exts;
    exts.reserve(ctx.lexed.allows.size());
    for (const Allow &a : ctx.lexed.allows) {
        Extent e;
        std::pair<int, int> span =
            allowExtent(ctx.lexed.tokens, a.line);
        e.first = span.first;
        e.last = span.second;
        e.wellFormed = !a.rule.empty() && knownRule(a.rule) &&
                       !a.justification.empty();
        exts.push_back(e);
    }

    std::vector<Diagnostic> out;
    for (Diagnostic &d : diags) {
        bool suppressed = false;
        for (std::size_t k = 0; k < exts.size(); ++k) {
            const Allow &a = ctx.lexed.allows[k];
            if (exts[k].wellFormed && a.rule == d.rule &&
                d.line >= exts[k].first && d.line <= exts[k].last) {
                ++exts[k].uses;
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            out.push_back(std::move(d));
    }

    // Validate the markers themselves; a well-formed marker that
    // suppresses nothing is stale and must go.
    for (std::size_t k = 0; k < ctx.lexed.allows.size(); ++k) {
        const Allow &a = ctx.lexed.allows[k];
        if (a.rule.empty() || !knownRule(a.rule)) {
            std::string ruleList;
            for (const RuleDoc &d : ruleCatalog()) {
                if (!d.allowable)
                    continue;
                if (!ruleList.empty())
                    ruleList += ", ";
                ruleList += d.id;
            }
            emit(out, ctx, a.line, "allow-syntax",
                 "otcheck:allow names unknown rule '" + a.rule + "'",
                 "rules: " + ruleList);
        }
        else if (a.justification.empty())
            emit(out, ctx, a.line, "allow-syntax",
                 "otcheck:allow(" + a.rule + ") without justification",
                 "write otcheck:allow(" + a.rule +
                     "): <why this is safe>");
        else if (exts[k].uses == 0)
            emit(out, ctx, a.line, "unused-allow",
                 "otcheck:allow(" + a.rule +
                     ") no longer suppresses anything",
                 "the code it excused is gone or clean; remove the "
                 "marker");
    }

    std::sort(out.begin(), out.end(),
              [](const Diagnostic &l, const Diagnostic &r) {
                  if (l.line != r.line)
                      return l.line < r.line;
                  return l.rule < r.rule;
              });
    return out;
}

std::vector<Diagnostic>
runRules(const FileContext &ctx)
{
    std::vector<FileContext> one(1, ctx);
    std::vector<Diagnostic> raw = runFileRules(one[0]);
    std::vector<Diagnostic> proj = runProjectRules(one);
    raw.insert(raw.end(), proj.begin(), proj.end());
    return applyAllows(one[0], std::move(raw));
}

} // namespace ot::check

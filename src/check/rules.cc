#include "check/rules.hh"

#include <algorithm>
#include <map>

namespace ot::check {

namespace {

const std::vector<std::string> kNoRestriction;

/**
 * The layer DAG, as observed includes: layer → layers it may include.
 * Kept in one table so DESIGN.md, this file and the fixtures can be
 * diffed against each other.  A layer always includes itself.
 */
const std::map<std::string, std::vector<std::string>> &
layerTable()
{
    static const std::map<std::string, std::vector<std::string>> t = {
        {"vlsi", {"vlsi"}},
        {"trace", {"trace", "vlsi"}},
        {"sim", {"sim", "trace", "vlsi"}},
        {"linalg", {"linalg", "vlsi"}},
        {"layout", {"layout", "vlsi"}},
        {"analysis", {"analysis", "vlsi"}},
        {"graph", {"graph", "linalg", "sim", "trace", "vlsi"}},
        {"otn",
         {"otn", "graph", "layout", "linalg", "sim", "trace", "vlsi"}},
        {"otc",
         {"otc", "otn", "graph", "layout", "linalg", "sim", "trace",
          "vlsi"}},
        {"baselines",
         {"baselines", "otn", "graph", "layout", "linalg", "sim",
          "trace", "vlsi"}},
        {"workload",
         {"workload", "otc", "otn", "graph", "layout", "linalg", "sim",
          "trace", "vlsi"}},
        // The checker itself: standard library only, so it can never
        // deadlock on the layers it audits.
        {"check", {"check"}},
    };
    return t;
}

bool
isSrcLayer(const std::string &layer)
{
    return layerTable().count(layer) != 0;
}

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty())
                parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

/** Token text at index, or "" out of range. */
const std::string &
at(const std::vector<Token> &toks, std::size_t i)
{
    static const std::string empty;
    return i < toks.size() ? toks[i].text : empty;
}

bool
isIdent(const std::vector<Token> &toks, std::size_t i)
{
    return i < toks.size() && toks[i].kind == Token::Kind::Ident;
}

/**
 * Is the identifier at `i` (known to be followed by `(`) a *call* in
 * free/static position?  Member calls (`x.time()`) are someone else's
 * method and fine; declarations (`int time(...)`) are not calls.
 */
bool
freeCallContext(const std::vector<Token> &toks, std::size_t i)
{
    if (i == 0)
        return true;
    const std::string &prev = at(toks, i - 1);
    if (prev == "." || prev == "->")
        return false; // member call
    if (prev == "::") {
        // std::rand( / ::rand( are the banned spellings;
        // SomeClass::time( is someone's own static.
        if (i < 2)
            return true;
        const std::string &q = at(toks, i - 2);
        return q == "std" || !isIdent(toks, i - 2);
    }
    if (isIdent(toks, i - 1))
        return prev == "return" || prev == "co_return" ||
               prev == "co_await" || prev == "case";
    return true; // after `;`, `{`, `(`, `,`, `=`, operators, ...
}

struct BannedName
{
    const char *name;
    bool callOnly; ///< only in free-call position `name(`
    const char *message;
    const char *hint;
};

const BannedName kDeterminismBans[] = {
    {"rand", true, "call to rand() is a nondeterminism source",
     "use ot::sim::Rng with an explicit seed"},
    {"srand", true, "call to srand() seeds global hidden state",
     "use ot::sim::Rng with an explicit seed"},
    {"random_device", false,
     "std::random_device draws entropy from the host",
     "use ot::sim::Rng with an explicit seed"},
    {"random_shuffle", false,
     "std::random_shuffle uses unspecified global randomness",
     "shuffle with ot::sim::Rng-driven std::swap loop"},
    {"time", true, "call to time() reads the wall clock",
     "model time lives in sim::TimeAccountant::now()"},
    {"clock", true, "call to clock() reads host CPU time",
     "model time lives in sim::TimeAccountant::now()"},
    {"clock_gettime", false, "clock_gettime() reads the wall clock",
     "model time lives in sim::TimeAccountant::now()"},
    {"gettimeofday", false, "gettimeofday() reads the wall clock",
     "model time lives in sim::TimeAccountant::now()"},
    {"system_clock", false, "std::chrono clocks read host time",
     "model time lives in sim::TimeAccountant::now()"},
    {"steady_clock", false, "std::chrono clocks read host time",
     "model time lives in sim::TimeAccountant::now()"},
    {"high_resolution_clock", false,
     "std::chrono clocks read host time",
     "model time lives in sim::TimeAccountant::now()"},
    {"getpid", false, "getpid() varies run to run",
     "derive ids from loop indices, not the host"},
    {"pthread_self", false, "pthread_self() is host-thread-dependent",
     "lane identity must come from the dispatch index"},
    {"get_id", false,
     "thread ids are host-dependent and vary with OT_HOST_THREADS",
     "lane identity must come from the dispatch index"},
    {"unordered_map", false,
     "std::unordered_map iteration order is unspecified",
     "use std::map or a sorted vector of pairs"},
    {"unordered_set", false,
     "std::unordered_set iteration order is unspecified",
     "use std::set or a sorted vector"},
    {"unordered_multimap", false,
     "std::unordered_multimap iteration order is unspecified",
     "use std::multimap or a sorted vector of pairs"},
    {"unordered_multiset", false,
     "std::unordered_multiset iteration order is unspecified",
     "use std::multiset or a sorted vector"},
};

const BannedName kHotpathBans[] = {
    {"virtual", false, "virtual dispatch in a hotpath file",
     "use flat value types (cf. otn::Sel / otc::CSel)"},
    {"new", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"malloc", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"calloc", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"realloc", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"make_unique", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
    {"make_shared", false, "heap allocation in a hotpath file",
     "preallocate in setup code and reuse buffers"},
};

/** begin/end call names the accounting rule pairs up. */
struct CallPair
{
    const char *begin;
    const char *end;
};
const CallPair kAccountingPairs[] = {
    {"beginPhase", "endPhase"},
    {"spanBegin", "spanEnd"},
};

void
emit(std::vector<Diagnostic> &out, const FileContext &ctx, int line,
     const char *rule, const std::string &message,
     const std::string &hint)
{
    Diagnostic d;
    d.file = ctx.path;
    d.line = line;
    d.rule = rule;
    d.message = message;
    d.hint = hint;
    out.push_back(std::move(d));
}

void
runDeterminism(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    const auto &toks = ctx.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident)
            continue;
        for (const BannedName &ban : kDeterminismBans) {
            if (toks[i].text != ban.name)
                continue;
            if (ban.callOnly &&
                !(at(toks, i + 1) == "(" && freeCallContext(toks, i)))
                continue;
            emit(out, ctx, toks[i].line, "determinism", ban.message,
                 ban.hint);
        }

        // Address-keyed associative containers: std::map/std::set
        // with a pointer in the key type iterate in address order.
        if ((toks[i].text == "map" || toks[i].text == "set" ||
             toks[i].text == "multimap" ||
             toks[i].text == "multiset") &&
            at(toks, i - 1) == "::" && at(toks, i - 2) == "std" &&
            at(toks, i + 1) == "<") {
            int depth = 0;
            for (std::size_t j = i + 1;
                 j < toks.size() && j < i + 64; ++j) {
                const std::string &t = toks[j].text;
                if (t == "<")
                    ++depth;
                else if (t == ">") {
                    if (--depth == 0)
                        break;
                } else if (t == "," && depth == 1) {
                    break; // end of the key type
                } else if (t == ";" || t == "{") {
                    break; // not a template argument list after all
                } else if (t == "*") {
                    emit(out, ctx, toks[j].line, "determinism",
                         "pointer-keyed std::" + toks[i].text +
                             " iterates in address order",
                         "key by a stable index or id instead");
                    break;
                }
            }
        }
    }
}

void
runLayering(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    bool underSrc = false;
    for (const std::string &part : splitPath(ctx.path))
        if (part == "src")
            underSrc = true;

    const bool restricted = isSrcLayer(ctx.layer);
    const auto &allowed =
        restricted ? layerTable().at(ctx.layer) : kNoRestriction;

    for (const Include &inc : ctx.lexed.includes) {
        std::size_t slash = inc.path.find('/');
        if (slash == std::string::npos)
            continue; // system or same-directory include
        std::string dir = inc.path.substr(0, slash);

        if (dir == "orthotree") {
            if (underSrc)
                emit(out, ctx, inc.line, "layering",
                     "umbrella include \"orthotree/...\" from inside "
                     "src/",
                     "include the specific layer header instead");
            continue;
        }
        if (!restricted || layerTable().count(dir) == 0)
            continue;
        if (std::find(allowed.begin(), allowed.end(), dir) ==
            allowed.end())
            emit(out, ctx, inc.line, "layering",
                 "layer '" + ctx.layer + "' may not include '" + dir +
                     "/" + inc.path.substr(slash + 1) + "'",
                 "allowed from '" + ctx.layer +
                     "': see the layer DAG in DESIGN.md");
    }
}

/**
 * Does the `{` at index `i` open a function body?  Walk back over the
 * tokens a declarator tail may contain (cv-qualifiers, trailing
 * return types); a `)` means yes, anything else (class heads,
 * initializers, namespaces) means no.
 */
bool
opensFunctionBody(const std::vector<Token> &toks, std::size_t i)
{
    std::size_t steps = 0;
    for (std::size_t j = i; j-- > 0 && steps < 16; ++steps) {
        const std::string &t = toks[j].text;
        if (t == ")")
            return true;
        bool declaratorTail =
            toks[j].kind == Token::Kind::Ident ||
            toks[j].kind == Token::Kind::Number || t == "::" ||
            t == "->" || t == "<" || t == ">" || t == "*" ||
            t == "&" || t == ",";
        // Identifier-ish heads that can never trail a parameter list.
        if (t == "class" || t == "struct" || t == "union" ||
            t == "enum" || t == "namespace")
            return false;
        if (!declaratorTail)
            return false;
    }
    return false;
}

bool
isPairCall(const std::vector<Token> &toks, std::size_t i,
           const char *name)
{
    if (toks[i].kind != Token::Kind::Ident || toks[i].text != name)
        return false;
    if (at(toks, i + 1) != "(")
        return false;
    // Count both free calls and member calls (acct.beginPhase(...));
    // skip declarations (`void beginPhase(...)`).
    const std::string &prev = at(toks, i - 1);
    if (prev == "." || prev == "->")
        return true;
    return freeCallContext(toks, i);
}

void
runAccounting(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    const auto &toks = ctx.lexed.tokens;
    constexpr std::size_t nPairs =
        sizeof(kAccountingPairs) / sizeof(kAccountingPairs[0]);

    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text != "{" ||
            toks[i].kind != Token::Kind::Punct ||
            !opensFunctionBody(toks, i))
            continue;

        int outstanding[nPairs] = {};
        int lastBeginLine[nPairs] = {};
        int depth = 0;
        std::size_t j = i;
        for (; j < toks.size(); ++j) {
            const std::string &t = toks[j].text;
            if (toks[j].kind == Token::Kind::Punct) {
                if (t == "{")
                    ++depth;
                else if (t == "}" && --depth == 0)
                    break;
                continue;
            }
            if (t == "return" || t == "co_return") {
                for (std::size_t p = 0; p < nPairs; ++p)
                    if (outstanding[p] > 0)
                        emit(out, ctx, toks[j].line, "accounting",
                             std::string("return with ") +
                                 kAccountingPairs[p].begin +
                                 " still open on this path",
                             std::string("call ") +
                                 kAccountingPairs[p].end +
                                 " first, or use the RAII wrapper "
                                 "(sim::ScopedPhase)");
                continue;
            }
            for (std::size_t p = 0; p < nPairs; ++p) {
                if (isPairCall(toks, j, kAccountingPairs[p].begin)) {
                    ++outstanding[p];
                    lastBeginLine[p] = toks[j].line;
                } else if (isPairCall(toks, j,
                                      kAccountingPairs[p].end)) {
                    if (outstanding[p] == 0)
                        emit(out, ctx, toks[j].line, "accounting",
                             std::string(kAccountingPairs[p].end) +
                                 " without a matching " +
                                 kAccountingPairs[p].begin +
                                 " in this function",
                             "balance the pair within one function "
                             "body");
                    else
                        --outstanding[p];
                }
            }
        }
        for (std::size_t p = 0; p < nPairs; ++p)
            if (outstanding[p] > 0)
                emit(out, ctx, lastBeginLine[p], "accounting",
                     std::string(kAccountingPairs[p].begin) +
                         " never closed before the function ends",
                     std::string("call ") + kAccountingPairs[p].end +
                         " on every path, or use the RAII wrapper "
                         "(sim::ScopedPhase)");
        i = j; // resume after this body
    }
}

void
runHotpath(const FileContext &ctx, std::vector<Diagnostic> &out)
{
    if (!ctx.lexed.hotpath)
        return;
    const auto &toks = ctx.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident)
            continue;
        // std::function specifically (a variable named `function` is
        // not dispatch).
        if (toks[i].text == "function" && at(toks, i - 1) == "::" &&
            at(toks, i - 2) == "std") {
            emit(out, ctx, toks[i].line, "hotpath",
                 "std::function (type-erased call) in a hotpath file",
                 "use flat value types (cf. otn::Sel / otc::CSel)");
            continue;
        }
        for (const BannedName &ban : kHotpathBans)
            if (toks[i].text == ban.name)
                emit(out, ctx, toks[i].line, "hotpath", ban.message,
                     ban.hint);
    }
}

} // namespace

std::string
classifyLayer(const std::string &path)
{
    std::vector<std::string> parts = splitPath(path);
    for (std::size_t i = 0; i + 1 < parts.size(); ++i)
        if (parts[i] == "src")
            return parts[i + 1];
    for (const std::string &p : parts)
        if (p == "tools" || p == "tests" || p == "bench" ||
            p == "examples" || p == "include")
            return p;
    return "";
}

const std::vector<std::string> &
allowedIncludes(const std::string &layer)
{
    auto it = layerTable().find(layer);
    return it == layerTable().end() ? kNoRestriction : it->second;
}

bool
knownRule(const std::string &rule)
{
    return rule == "determinism" || rule == "layering" ||
           rule == "accounting" || rule == "hotpath";
}

std::vector<Diagnostic>
runRules(const FileContext &ctx)
{
    std::vector<Diagnostic> raw;

    if (ctx.layer == "sim" || ctx.layer == "otn" ||
        ctx.layer == "otc" || ctx.layer == "workload")
        runDeterminism(ctx, raw);
    runLayering(ctx, raw);
    runAccounting(ctx, raw);
    runHotpath(ctx, raw);

    // Apply allow() escapes: a marker suppresses a same-rule
    // diagnostic on its own or the following line, but only when it
    // carries a justification.
    std::vector<Diagnostic> out;
    for (Diagnostic &d : raw) {
        bool suppressed = false;
        for (const Allow &a : ctx.lexed.allows)
            if (a.rule == d.rule && !a.justification.empty() &&
                (a.line == d.line || a.line == d.line - 1))
                suppressed = true;
        if (!suppressed)
            out.push_back(std::move(d));
    }

    // Validate the markers themselves.
    for (const Allow &a : ctx.lexed.allows) {
        if (a.rule.empty() || !knownRule(a.rule))
            emit(out, ctx, a.line, "allow-syntax",
                 "otcheck:allow names unknown rule '" + a.rule + "'",
                 "rules: determinism, layering, accounting, hotpath");
        else if (a.justification.empty())
            emit(out, ctx, a.line, "allow-syntax",
                 "otcheck:allow(" + a.rule + ") without justification",
                 "write otcheck:allow(" + a.rule +
                     "): <why this is safe>");
    }

    std::sort(out.begin(), out.end(),
              [](const Diagnostic &l, const Diagnostic &r) {
                  if (l.line != r.line)
                      return l.line < r.line;
                  return l.rule < r.rule;
              });
    return out;
}

} // namespace ot::check

#include "check/checker.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace ot::check {

namespace fs = std::filesystem;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
hasSourceExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh";
}

/** Make `p` relative to `root` with '/' separators; returns "" when
 *  `p` is not under `root`. */
std::string
relativeTo(const fs::path &root, const fs::path &p)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty())
        return "";
    std::string s = rel.generic_string();
    if (s.compare(0, 2, "..") == 0)
        return "";
    return s;
}

/**
 * Pull the "file" entries out of a compile_commands.json.  The format
 * is fixed (an array of objects with "directory"/"command"/"file"
 * string members), so a targeted scan beats carrying a JSON parser:
 * find each `"file"` key and take its string value, honouring
 * escapes.
 */
std::vector<std::string>
compileCommandsFiles(const std::string &json)
{
    std::vector<std::string> files;
    const std::string key = "\"file\"";
    std::size_t pos = 0;
    while ((pos = json.find(key, pos)) != std::string::npos) {
        pos += key.size();
        while (pos < json.size() &&
               (json[pos] == ' ' || json[pos] == '\t' ||
                json[pos] == ':' || json[pos] == '\n'))
            ++pos;
        if (pos >= json.size() || json[pos] != '"')
            continue;
        ++pos;
        std::string value;
        while (pos < json.size() && json[pos] != '"') {
            if (json[pos] == '\\' && pos + 1 < json.size()) {
                ++pos;
                value += json[pos] == 'n' ? '\n' : json[pos];
            } else {
                value += json[pos];
            }
            ++pos;
        }
        files.push_back(std::move(value));
    }
    return files;
}

void
jsonEscape(std::ostringstream &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        case '\t':
            out << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
}

bool
diagLess(const Diagnostic &l, const Diagnostic &r)
{
    if (l.file != r.file)
        return l.file < r.file;
    if (l.line != r.line)
        return l.line < r.line;
    if (l.rule != r.rule)
        return l.rule < r.rule;
    return l.message < r.message;
}

bool
diagEqual(const Diagnostic &l, const Diagnostic &r)
{
    return l.file == r.file && l.line == r.line && l.rule == r.rule &&
           l.message == r.message;
}

} // namespace

std::uint64_t
contentHash(const std::string &source)
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    for (char c : source) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull; // FNV prime
    }
    return h;
}

namespace {

/** Cache file stamp: bump kCacheVersion on any format change; the
 *  catalog size invalidates on rule additions (new rules must see
 *  every file once). */
constexpr int kCacheVersion = 1;

} // namespace

AnalysisCache
loadAnalysisCache(const std::string &path)
{
    AnalysisCache cache;
    std::ifstream in(path);
    if (!in)
        return cache;
    std::string tag;
    int version = 0;
    std::size_t catalogSize = 0;
    in >> tag >> version >> catalogSize;
    if (tag != "otcheck-cache" || version != kCacheVersion ||
        catalogSize != ruleCatalog().size())
        return cache;
    in.ignore(1, '\n');
    std::string line;
    CacheEntry *entry = nullptr;
    while (std::getline(in, line)) {
        if (line.compare(0, 2, "f ") == 0) {
            std::size_t sep = line.find(' ', 2);
            if (sep == std::string::npos) {
                entry = nullptr;
                continue;
            }
            std::uint64_t hash =
                std::strtoull(line.c_str() + 2, nullptr, 16);
            entry = &cache.entries[line.substr(sep + 1)];
            entry->hash = hash;
        } else if (line.compare(0, 2, "d ") == 0 && entry) {
            // d <file> <line> <rule>\t<message>\t<hint>
            std::size_t s1 = line.find(' ', 2);
            std::size_t s2 = line.find(' ', s1 + 1);
            std::size_t t1 = line.find('\t', s2 + 1);
            std::size_t t2 = t1 == std::string::npos
                                 ? std::string::npos
                                 : line.find('\t', t1 + 1);
            if (s1 == std::string::npos ||
                s2 == std::string::npos ||
                t1 == std::string::npos || t2 == std::string::npos)
                continue;
            Diagnostic d;
            d.file = line.substr(2, s1 - 2);
            d.line = std::atoi(line.c_str() + s1 + 1);
            d.rule = line.substr(s2 + 1, t1 - (s2 + 1));
            d.message = line.substr(t1 + 1, t2 - (t1 + 1));
            d.hint = line.substr(t2 + 1);
            entry->diags.push_back(std::move(d));
        }
    }
    return cache;
}

bool
saveAnalysisCache(const std::string &path, const AnalysisCache &cache)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "otcheck-cache " << kCacheVersion << " "
        << ruleCatalog().size() << "\n";
    char hex[32];
    for (const auto &[file, entry] : cache.entries) {
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(entry.hash));
        out << "f " << hex << " " << file << "\n";
        for (const Diagnostic &d : entry.diags)
            out << "d " << d.file << " " << d.line << " " << d.rule
                << "\t" << d.message << "\t" << d.hint << "\n";
    }
    return static_cast<bool>(out);
}

Report
checkProject(const std::vector<SourceFile> &files, RunStats *stats,
             AnalysisCache *cache)
{
    using Clock = std::chrono::steady_clock;
    auto msSince = [](Clock::time_point t0) {
        return std::chrono::duration<double, std::milli>(
                   Clock::now() - t0)
            .count();
    };
    Clock::time_point start = Clock::now();

    std::vector<FileContext> ctxs;
    ctxs.reserve(files.size());
    for (const SourceFile &f : files) {
        FileContext ctx;
        ctx.lexed = lex(f.source);
        ctx.path = ctx.lexed.fixturePath.empty()
                       ? f.path
                       : ctx.lexed.fixturePath;
        ctx.layer = classifyLayer(ctx.path);
        ctx.parsed = parseFile(ctx.lexed);
        ctxs.push_back(std::move(ctx));
    }
    if (stats) {
        stats->files = ctxs.size();
        stats->lexParseMs = msSince(start);
    }

    std::map<std::string, std::vector<Diagnostic>> byFile;
    Clock::time_point t1 = Clock::now();
    std::map<std::string, CacheEntry> fresh;
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
        const FileContext &ctx = ctxs[i];
        if (cache) {
            std::uint64_t hash = contentHash(files[i].source);
            auto it = cache->entries.find(files[i].path);
            if (it != cache->entries.end() &&
                it->second.hash == hash) {
                for (const Diagnostic &d : it->second.diags)
                    byFile[d.file].push_back(d);
                fresh[files[i].path] = it->second;
                if (stats)
                    ++stats->cacheHits;
                continue;
            }
            std::vector<Diagnostic> diags = runFileRules(ctx);
            CacheEntry &e = fresh[files[i].path];
            e.hash = hash;
            e.diags = diags;
            for (Diagnostic &d : diags)
                byFile[d.file].push_back(std::move(d));
            if (stats)
                ++stats->cacheMisses;
            continue;
        }
        if (stats)
            ++stats->cacheMisses;
        for (Diagnostic &d : runFileRules(ctx))
            byFile[d.file].push_back(std::move(d));
    }
    if (cache)
        cache->entries = std::move(fresh);
    if (stats)
        stats->fileRulesMs = msSince(t1);

    Clock::time_point t2 = Clock::now();
    ProjectRuleStats prs;
    for (Diagnostic &d : runProjectRules(ctxs, stats ? &prs : nullptr))
        byFile[d.file].push_back(std::move(d));
    if (stats) {
        stats->projectRulesMs = msSince(t2);
        stats->functionsAnalyzed = prs.functionsAnalyzed;
        stats->summaryEvaluations = prs.summaryEvaluations;
        stats->taintRounds = prs.taintRounds;
    }

    Report report;
    for (const FileContext &ctx : ctxs) {
        report.files.push_back(ctx.path);
        std::vector<Diagnostic> mine;
        auto it = byFile.find(ctx.path);
        if (it != byFile.end())
            mine = std::move(it->second);
        for (Diagnostic &d : applyAllows(ctx, std::move(mine)))
            report.diagnostics.push_back(std::move(d));
    }
    std::sort(report.files.begin(), report.files.end());
    std::sort(report.diagnostics.begin(), report.diagnostics.end(),
              diagLess);
    report.diagnostics.erase(
        std::unique(report.diagnostics.begin(),
                    report.diagnostics.end(), diagEqual),
        report.diagnostics.end());
    if (stats)
        stats->totalMs = msSince(start);
    return report;
}

std::vector<Diagnostic>
checkSource(const std::string &path, const std::string &source)
{
    return checkProject({{path, source}}).diagnostics;
}

std::vector<Diagnostic>
checkFile(const std::string &filePath, const std::string &displayPath)
{
    return checkSource(displayPath, readFile(filePath));
}

std::vector<std::string>
collectFiles(const std::string &root,
             const std::string &compileCommandsPath)
{
    std::vector<std::string> files;
    const fs::path rootPath(root);

    for (const char *sub : {"src", "tools", "bench"}) {
        fs::path dir = rootPath / sub;
        std::error_code ec;
        if (!fs::is_directory(dir, ec))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it)
            if (it->is_regular_file() &&
                hasSourceExtension(it->path()))
                files.push_back(relativeTo(rootPath, it->path()));
    }

    if (!compileCommandsPath.empty()) {
        for (const std::string &f :
             compileCommandsFiles(readFile(compileCommandsPath))) {
            std::string rel = relativeTo(rootPath, fs::path(f));
            if (rel.empty())
                continue;
            if (rel.compare(0, 4, "src/") == 0 ||
                rel.compare(0, 6, "tools/") == 0 ||
                rel.compare(0, 6, "bench/") == 0)
                files.push_back(std::move(rel));
        }
    }

    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    files.erase(std::remove(files.begin(), files.end(), std::string()),
                files.end());
    return files;
}

Report
checkTree(const std::string &root,
          const std::vector<std::string> &files, RunStats *stats,
          AnalysisCache *cache)
{
    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (const std::string &rel : files)
        sources.push_back(
            {rel, readFile((fs::path(root) / rel).string())});
    return checkProject(sources, stats, cache);
}

Baseline
loadBaseline(const std::string &path)
{
    Baseline b;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        std::size_t begin = line.find_first_not_of(" \t");
        if (begin == std::string::npos || line[begin] == '#')
            continue;
        std::size_t sep = line.find_first_of(" \t", begin);
        if (sep == std::string::npos)
            continue;
        std::string rule = line.substr(begin, sep - begin);
        std::size_t fbegin = line.find_first_not_of(" \t", sep);
        if (fbegin == std::string::npos)
            continue;
        std::size_t fend = line.find_last_not_of(" \t\r");
        b.entries.insert(
            {rule, line.substr(fbegin, fend - fbegin + 1)});
    }
    return b;
}

std::size_t
applyBaseline(const Baseline &baseline, Report &report)
{
    if (baseline.entries.empty())
        return 0;
    std::size_t before = report.diagnostics.size();
    report.diagnostics.erase(
        std::remove_if(report.diagnostics.begin(),
                       report.diagnostics.end(),
                       [&](const Diagnostic &d) {
                           return baseline.entries.count(
                                      {d.rule, d.file}) != 0;
                       }),
        report.diagnostics.end());
    return before - report.diagnostics.size();
}

std::string
renderText(const Report &report)
{
    std::ostringstream out;
    for (const Diagnostic &d : report.diagnostics) {
        out << d.file << ":" << d.line << ": error: [" << d.rule
            << "] " << d.message;
        if (!d.hint.empty())
            out << " (hint: " << d.hint << ")";
        out << "\n";
    }
    out << "otcheck: " << report.files.size() << " files, "
        << report.diagnostics.size() << " diagnostic"
        << (report.diagnostics.size() == 1 ? "" : "s") << "\n";
    return out.str();
}

std::string
renderJson(const Report &report)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic &d = report.diagnostics[i];
        out << (i ? ",\n " : "\n ") << "{\"file\": \"";
        jsonEscape(out, d.file);
        out << "\", \"line\": " << d.line << ", \"rule\": \"";
        jsonEscape(out, d.rule);
        out << "\", \"message\": \"";
        jsonEscape(out, d.message);
        out << "\", \"hint\": \"";
        jsonEscape(out, d.hint);
        out << "\"}";
    }
    out << (report.diagnostics.empty() ? "]\n" : "\n]\n");
    return out.str();
}

namespace {

std::string
fmtMs(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", ms);
    return buf;
}

} // namespace

std::string
renderStatsText(const RunStats &stats)
{
    std::ostringstream out;
    out << "files: " << stats.files << "\n"
        << "functions-analyzed: " << stats.functionsAnalyzed << "\n"
        << "summary-evaluations: " << stats.summaryEvaluations << "\n"
        << "taint-rounds: " << stats.taintRounds << "\n"
        << "cache-hits: " << stats.cacheHits << "\n"
        << "cache-misses: " << stats.cacheMisses << "\n"
        << "lex-parse-ms: " << fmtMs(stats.lexParseMs) << "\n"
        << "file-rules-ms: " << fmtMs(stats.fileRulesMs) << "\n"
        << "project-rules-ms: " << fmtMs(stats.projectRulesMs) << "\n"
        << "total-ms: " << fmtMs(stats.totalMs) << "\n";
    return out.str();
}

std::string
renderStatsJson(const RunStats &stats)
{
    std::ostringstream out;
    out << "{\n"
        << " \"files\": " << stats.files << ",\n"
        << " \"functionsAnalyzed\": " << stats.functionsAnalyzed
        << ",\n"
        << " \"summaryEvaluations\": " << stats.summaryEvaluations
        << ",\n"
        << " \"taintRounds\": " << stats.taintRounds << ",\n"
        << " \"cacheHits\": " << stats.cacheHits << ",\n"
        << " \"cacheMisses\": " << stats.cacheMisses << ",\n"
        << " \"lexParseMs\": " << fmtMs(stats.lexParseMs) << ",\n"
        << " \"fileRulesMs\": " << fmtMs(stats.fileRulesMs) << ",\n"
        << " \"projectRulesMs\": " << fmtMs(stats.projectRulesMs)
        << ",\n"
        << " \"totalMs\": " << fmtMs(stats.totalMs) << "\n"
        << "}\n";
    return out.str();
}

} // namespace ot::check

/**
 * @file
 * Project-wide call graph for otcheck's hotpath-propagation rule.
 *
 * Nodes are the named function definitions in the run's src/-layer
 * files.  Each node carries a "dirty" bit: it is intrinsically dirty
 * when its own body uses a construct the hotpath rule bans (heap
 * allocation, std::function, virtual dispatch), and transitively
 * dirty when every definition a call site could resolve to is dirty.
 *
 * Resolution is by name only — the checker has no types — so a call
 * with several same-named candidates is judged pessimistically about
 * *reachability* (any candidate may be the target) but optimistically
 * about *dirt*: the caller is marked dirty only when ALL candidates
 * are, because flagging a call that might bind to a clean overload
 * would make the rule unusable.  Unknown names (std::, libc, files
 * outside the run) resolve to nothing and propagate nothing.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "check/cfg.hh"
#include "check/rules.hh"

namespace ot::check {

/** One named src/-layer function definition. */
struct CallNode
{
    int file = -1;              ///< index into the run's contexts
    const FuncDef *def = nullptr;
    bool dirty = false;         ///< intrinsic or transitive
    std::string why;            ///< witness, e.g. "heap allocation
                                ///  (new) at src/x.cc:7 via a → b"
};

struct CallGraph
{
    std::vector<CallNode> nodes;
    /** Function name → node indices (all same-named definitions). */
    std::map<std::string, std::vector<int>> byName;
};

/** Build the graph and run the dirt fixpoint to convergence. */
CallGraph buildCallGraph(const std::vector<FileContext> &ctxs);

} // namespace ot::check

/**
 * @file
 * otcheck rule definitions.
 *
 * The rule families guard the engine's headline guarantee — charged
 * model time and trace streams bit-identical at any OT_HOST_THREADS —
 * plus the architectural layering that keeps them auditable:
 *
 *   determinism — no nondeterminism sources (wall clocks, rand(),
 *                 thread ids) and no iteration-order hazards
 *                 (std::unordered_*, pointer-keyed map/set) inside
 *                 the lane-reachable layers src/sim, src/otn,
 *                 src/otc.
 *   layering    — `#include` edges must follow the layer DAG (see
 *                 DESIGN.md); no back-edges, and no
 *                 include/orthotree umbrella includes from src/.
 *   accounting  — TimeAccountant::beginPhase/endPhase (and any
 *                 spanBegin/spanEnd pairing) must balance on every
 *                 control-flow path through a function body: the
 *                 per-function CFG is walked path-sensitively, so
 *                 early returns, branches, switch fallthrough and
 *                 loop-carried imbalance are all proven, and RAII
 *                 wrappers (ctor net +1, dtor net -1) are recognized
 *                 without escapes.
 *   hotpath     — files carrying the hotpath marker may not mention
 *                 std::function, `virtual`, or heap-allocation
 *                 tokens (new/malloc/make_unique/...).
 *   hotpath-propagation — transitive form of the above over the
 *                 project call graph: a function in a hotpath file
 *                 may not call (by any chain of src/ definitions) a
 *                 function that allocates, uses std::function, or is
 *                 virtual.
 *   include-hygiene — every resolved project include must contribute
 *                 a used symbol (directly or as a gateway), and a
 *                 symbol with a unique declaring header must include
 *                 that header directly rather than rely on an
 *                 unrelated transitive path.
 *   unreachable — no statements after an unconditional
 *                 return/throw/abort in a block.
 *   determinism-taint — interprocedural form of determinism: a
 *                 function whose body draws from a raw nondeterminism
 *                 source (outside an allow(determinism) extent) taints
 *                 every function that reaches it through calls or
 *                 function-pointer references; a call from the
 *                 determinism scope into a tainted out-of-scope
 *                 definition is diagnosed with the full source→sink
 *                 witness chain, so wrapper laundering cannot escape
 *                 the flat token scan.
 *   lane-safety — lambdas passed to parallelFor run concurrently on
 *                 host lanes; writes through by-reference captures
 *                 must be indexed by the lane parameter (per-lane
 *                 buffer, merge after the join), including writes
 *                 performed by callees through non-const reference
 *                 parameters.
 *   shared      — classes carrying the shared(post-build) marker
 *                 (inherited through the hierarchy) are cached and
 *                 shared across engine shards; after construction
 *                 they may only change through their virtual plugin
 *                 API.  Non-API member writes, mutating calls on
 *                 members (direct or through a callee's summary,
 *                 with a cross-TU witness) and escaping non-const
 *                 member references are diagnosed.
 *   topo-contract — topology registry hygiene: duplicate registry
 *                 names, and concrete machines in a registered
 *                 hierarchy that no registration resolves to.
 *   topo-fallback — a registered machine must override the three
 *                 accounting hooks; inheriting an ancestor's costs
 *                 is flagged with the providing base named.
 *   sched-purity — functions carrying the pure marker (scenario
 *                 ranking functions) must be side-effect-free: no
 *                 by-reference argument mutation, no non-const
 *                 static locals, no determinism-tainted calls.
 *
 * Accounting is additionally interprocedural: per-function net
 * begin/end deltas are fixpointed over the call graph (conservative ⊤
 * on recursion and on opaque or disagreeing CFGs; see summaries.hh),
 * so a beginPhase in one function legally paired with the endPhase in
 * a callee or caller is verified instead of flagged.
 *
 * Any diagnostic can be suppressed with an allow(rule): justification
 * marker comment; the marker covers the full statement that begins on
 * or after its line (not just the physical line).  An empty
 * justification is itself an error (rule id `allow-syntax`), and a
 * well-formed marker that suppresses nothing is reported as
 * `unused-allow` so escapes cannot outlive their reason.  The exact
 * marker spelling is documented in README.md — writing it out here
 * would make the checker read its own docs as markers.
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "check/cfg.hh"
#include "check/lexer.hh"

namespace ot::check {

/** One finding.  `rule` is the stable machine-readable id. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    std::string hint; ///< how to fix, one line
};

/** A file presented to the rules: lexed + parsed content plus the
 *  repo-relative path it should be judged as (fixtures override their
 *  real path). */
struct FileContext
{
    std::string path;  ///< repo-relative, '/'-separated
    std::string layer; ///< classified layer, see classifyLayer()
    LexedFile lexed;
    ParsedFile parsed;
};

/**
 * Map a repo-relative path to its layer: the directory under src/
 * ("sim", "otn", ...), or "tools" / "tests" / "bench" / "examples" /
 * "include" for the app-level trees, or "" for anything else.
 */
std::string classifyLayer(const std::string &path);

/** Layers a given layer may include (empty ⇒ unrestricted). */
const std::vector<std::string> &allowedIncludes(const std::string &layer);

/** True for the lane-reachable layers the determinism rules scope to
 *  (sim, otn, otc, workload, scenario). */
bool inDeterminismScope(const std::string &layer);

/** One banned identifier shared by the flat determinism scan and the
 *  taint source scan. */
struct DeterminismBan
{
    const char *name;
    bool callOnly; ///< only banned in free-call position `name(`
};

/** The determinism ban list (names only; messages stay internal). */
const std::vector<DeterminismBan> &determinismBans();

/** True iff `rule` is one of the rule ids allow() may name. */
bool knownRule(const std::string &rule);

/**
 * Documentation record for one rule id — the single source of truth
 * rendered by both the SARIF emitter and `otcheck --explain`.
 */
struct RuleDoc
{
    const char *id;
    const char *summary; ///< one line; SARIF shortDescription
    const char *model;   ///< what the rule analyzes and how
    const char *example; ///< a representative diagnostic message
    const char *allowPolicy; ///< when an allow() escape is sanctioned
    bool allowable;          ///< may appear in an allow() marker
};

/** Every rule id otcheck can emit, in stable SARIF ruleIndex order.
 *  Append-only: reordering would re-map cached indices downstream. */
const std::vector<RuleDoc> &ruleCatalog();

/** Lookup by id; nullptr when unknown. */
const RuleDoc *findRuleDoc(const std::string &rule);

/** Line extent an allow() marker on `line` covers: from its own line
 *  through the end of the statement beginning at or after it.  Used
 *  by the allow filter and by source-level scans (determinism taint)
 *  that must honor markers before diagnostics exist. */
std::pair<int, int> allowExtent(const std::vector<Token> &toks,
                                int line);

/** Work counters from the interprocedural passes, for --stats. */
struct ProjectRuleStats
{
    std::size_t functionsAnalyzed = 0;
    std::size_t summaryEvaluations = 0; ///< accounting fixpoint work
    std::size_t taintRounds = 0;        ///< taint fixpoint sweeps
};

/** Run the single-file rules (determinism, layering, hotpath,
 *  intrinsics, unreachable) over one file.  Raw: allow() markers are
 *  NOT applied. */
std::vector<Diagnostic> runFileRules(const FileContext &ctx);

/** Run the cross-file rules (accounting with interprocedural
 *  summaries, hotpath-propagation, include-hygiene, determinism
 *  taint, lane-safety, the class-contract family: shared /
 *  topo-contract / topo-fallback / sched-purity) over a whole run's
 *  file set.  Raw: allow() markers are NOT applied. */
std::vector<Diagnostic>
runProjectRules(const std::vector<FileContext> &ctxs,
                ProjectRuleStats *stats = nullptr);

/** Apply one file's allow() markers to the diagnostics raised against
 *  it (from both rule passes): filter suppressed findings, validate
 *  the markers, report stale ones, and sort by (line, rule). */
std::vector<Diagnostic> applyAllows(const FileContext &ctx,
                                    std::vector<Diagnostic> diags);

/** Single-file convenience: file rules + the project rules run on the
 *  singleton set, with allows applied. */
std::vector<Diagnostic> runRules(const FileContext &ctx);

} // namespace ot::check

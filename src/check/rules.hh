/**
 * @file
 * otcheck rule definitions.
 *
 * Seven rule families guard the engine's headline guarantee — charged
 * model time and trace streams bit-identical at any OT_HOST_THREADS —
 * plus the architectural layering that keeps them auditable:
 *
 *   determinism — no nondeterminism sources (wall clocks, rand(),
 *                 thread ids) and no iteration-order hazards
 *                 (std::unordered_*, pointer-keyed map/set) inside
 *                 the lane-reachable layers src/sim, src/otn,
 *                 src/otc.
 *   layering    — `#include` edges must follow the layer DAG (see
 *                 DESIGN.md); no back-edges, and no
 *                 include/orthotree umbrella includes from src/.
 *   accounting  — TimeAccountant::beginPhase/endPhase (and any
 *                 spanBegin/spanEnd pairing) must balance on every
 *                 control-flow path through a function body: the
 *                 per-function CFG is walked path-sensitively, so
 *                 early returns, branches, switch fallthrough and
 *                 loop-carried imbalance are all proven, and RAII
 *                 wrappers (ctor net +1, dtor net -1) are recognized
 *                 without escapes.
 *   hotpath     — files carrying the hotpath marker may not mention
 *                 std::function, `virtual`, or heap-allocation
 *                 tokens (new/malloc/make_unique/...).
 *   hotpath-propagation — transitive form of the above over the
 *                 project call graph: a function in a hotpath file
 *                 may not call (by any chain of src/ definitions) a
 *                 function that allocates, uses std::function, or is
 *                 virtual.
 *   include-hygiene — every resolved project include must contribute
 *                 a used symbol (directly or as a gateway), and a
 *                 symbol with a unique declaring header must include
 *                 that header directly rather than rely on an
 *                 unrelated transitive path.
 *   unreachable — no statements after an unconditional
 *                 return/throw/abort in a block.
 *
 * Any diagnostic can be suppressed with an allow(rule): justification
 * marker comment; the marker covers the full statement that begins on
 * or after its line (not just the physical line).  An empty
 * justification is itself an error (rule id `allow-syntax`), and a
 * well-formed marker that suppresses nothing is reported as
 * `unused-allow` so escapes cannot outlive their reason.  The exact
 * marker spelling is documented in README.md — writing it out here
 * would make the checker read its own docs as markers.
 */

#pragma once

#include <string>
#include <vector>

#include "check/cfg.hh"
#include "check/lexer.hh"

namespace ot::check {

/** One finding.  `rule` is the stable machine-readable id. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    std::string hint; ///< how to fix, one line
};

/** A file presented to the rules: lexed + parsed content plus the
 *  repo-relative path it should be judged as (fixtures override their
 *  real path). */
struct FileContext
{
    std::string path;  ///< repo-relative, '/'-separated
    std::string layer; ///< classified layer, see classifyLayer()
    LexedFile lexed;
    ParsedFile parsed;
};

/**
 * Map a repo-relative path to its layer: the directory under src/
 * ("sim", "otn", ...), or "tools" / "tests" / "bench" / "examples" /
 * "include" for the app-level trees, or "" for anything else.
 */
std::string classifyLayer(const std::string &path);

/** Layers a given layer may include (empty ⇒ unrestricted). */
const std::vector<std::string> &allowedIncludes(const std::string &layer);

/** True iff `rule` is one of the rule ids allow() may name. */
bool knownRule(const std::string &rule);

/** Run the single-file rules (determinism, layering, accounting,
 *  hotpath, unreachable) over one file.  Raw: allow() markers are NOT
 *  applied. */
std::vector<Diagnostic> runFileRules(const FileContext &ctx);

/** Run the cross-file rules (hotpath-propagation, include-hygiene)
 *  over a whole run's file set.  Raw: allow() markers are NOT
 *  applied. */
std::vector<Diagnostic>
runProjectRules(const std::vector<FileContext> &ctxs);

/** Apply one file's allow() markers to the diagnostics raised against
 *  it (from both rule passes): filter suppressed findings, validate
 *  the markers, report stale ones, and sort by (line, rule). */
std::vector<Diagnostic> applyAllows(const FileContext &ctx,
                                    std::vector<Diagnostic> diags);

/** Single-file convenience: file rules + the project rules run on the
 *  singleton set, with allows applied. */
std::vector<Diagnostic> runRules(const FileContext &ctx);

} // namespace ot::check

/**
 * @file
 * otcheck rule definitions.
 *
 * Four rule families guard the engine's headline guarantee — charged
 * model time and trace streams bit-identical at any OT_HOST_THREADS —
 * plus the architectural layering that keeps them auditable:
 *
 *   determinism — no nondeterminism sources (wall clocks, rand(),
 *                 thread ids) and no iteration-order hazards
 *                 (std::unordered_*, pointer-keyed map/set) inside
 *                 the lane-reachable layers src/sim, src/otn,
 *                 src/otc.
 *   layering    — `#include` edges must follow the layer DAG (see
 *                 DESIGN.md); no back-edges, and no
 *                 include/orthotree umbrella includes from src/.
 *   accounting  — TimeAccountant::beginPhase/endPhase (and any
 *                 spanBegin/spanEnd pairing) must balance on every
 *                 path through a function body: equal counts, no
 *                 underflow, no `return` while a phase is open.
 *   hotpath     — files carrying the hotpath marker may not mention
 *                 std::function, `virtual`, or heap-allocation
 *                 tokens (new/malloc/make_unique/...).
 *
 * Any diagnostic can be suppressed with an allow(rule): justification
 * marker comment on the same or the preceding line; an empty
 * justification is itself an error (rule id `allow-syntax`).  The
 * exact marker spelling is documented in README.md — writing it out
 * here would make the checker read its own docs as markers.
 */

#pragma once

#include <string>
#include <vector>

#include "check/lexer.hh"

namespace ot::check {

/** One finding.  `rule` is the stable machine-readable id. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    std::string hint; ///< how to fix, one line
};

/** A file presented to the rules: lexed content plus the repo-relative
 *  path it should be judged as (fixtures override their real path). */
struct FileContext
{
    std::string path;  ///< repo-relative, '/'-separated
    std::string layer; ///< classified layer, see classifyLayer()
    LexedFile lexed;
};

/**
 * Map a repo-relative path to its layer: the directory under src/
 * ("sim", "otn", ...), or "tools" / "tests" / "bench" / "examples" /
 * "include" for the app-level trees, or "" for anything else.
 */
std::string classifyLayer(const std::string &path);

/** Layers a given layer may include (empty ⇒ unrestricted). */
const std::vector<std::string> &allowedIncludes(const std::string &layer);

/** True iff `rule` is one of the rule ids allow() may name. */
bool knownRule(const std::string &rule);

/** Run every rule over one file; diagnostics come back sorted by
 *  line.  allow() markers are applied (and themselves validated)
 *  here. */
std::vector<Diagnostic> runRules(const FileContext &ctx);

} // namespace ot::check

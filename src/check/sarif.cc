#include "check/sarif.hh"

#include <cstdio>
#include <sstream>

namespace ot::check {

namespace {

/** ruleIndex order is the catalog order (see rules.hh: append-only —
 *  reordering would silently re-map indices in consumers that cache
 *  them). */
int
ruleIndex(const std::string &id)
{
    int i = 0;
    for (const RuleDoc &r : ruleCatalog()) {
        if (id == r.id)
            return i;
        ++i;
    }
    return -1;
}

void
escape(std::ostringstream &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            out << "\\\"";
            break;
        case '\\':
            out << "\\\\";
            break;
        case '\n':
            out << "\\n";
            break;
        case '\t':
            out << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
}

} // namespace

std::string
renderSarif(const Report &report)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://raw.githubusercontent.com/oasis-tcs/"
           "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"otcheck\",\n"
        << "          \"informationUri\": "
           "\"https://example.invalid/orthotree/otcheck\",\n"
        << "          \"rules\": [\n";
    {
        bool first = true;
        for (const RuleDoc &r : ruleCatalog()) {
            out << (first ? "" : ",\n");
            first = false;
            out << "            {\"id\": \"" << r.id
                << "\", \"shortDescription\": {\"text\": \"";
            escape(out, r.summary);
            out << "\"}}";
        }
    }
    out << "\n          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic &d = report.diagnostics[i];
        std::string text = d.message;
        if (!d.hint.empty())
            text += " (hint: " + d.hint + ")";
        out << (i ? ",\n" : "");
        out << "        {\n"
            << "          \"ruleId\": \"";
        escape(out, d.rule);
        out << "\",\n";
        int idx = ruleIndex(d.rule);
        if (idx >= 0)
            out << "          \"ruleIndex\": " << idx << ",\n";
        out << "          \"level\": \"error\",\n"
            << "          \"message\": {\"text\": \"";
        escape(out, text);
        out << "\"},\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": {\"uri\": \"";
        escape(out, d.file);
        out << "\"},\n"
            << "                \"region\": {\"startLine\": "
            << (d.line > 0 ? d.line : 1) << "}\n"
            << "              }\n"
            << "            }\n"
            << "          ]\n"
            << "        }";
    }
    out << (report.diagnostics.empty() ? "" : "\n")
        << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

} // namespace ot::check

/**
 * @file
 * SARIF 2.1.0 emitter for otcheck.
 *
 * One run object, one driver ("otcheck"), the full rule table in
 * tool.driver.rules (so ruleIndex is stable run to run), and one
 * result per diagnostic with a repo-relative artifact URI.  GitHub
 * code scanning consumes this directly; the shape is also validated
 * against the published 2.1.0 JSON schema by a ctest entry.
 */

#pragma once

#include <string>

#include "check/checker.hh"

namespace ot::check {

/** Render a report as a SARIF 2.1.0 log (UTF-8, trailing newline). */
std::string renderSarif(const Report &report);

} // namespace ot::check

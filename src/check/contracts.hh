/**
 * @file
 * Class-contract analysis for otcheck: the class graph, the
 * shared(post-build) marker, and the topology plugin contracts.
 *
 * The fifth analysis stage.  The lexer (stage 1) records structural
 * markers, the parser (stage 2) splits out function bodies, the
 * symbol/call graphs (stage 3) and the dataflow summaries (stage 4)
 * resolve names and mutations; this stage adds the *class* dimension:
 * which classes exist, how they inherit, which member functions are
 * part of a class's virtual API, and which classes carry the
 * shared(post-build) marker (inherited through the hierarchy, so
 * marking a plugin base covers every plugin).
 *
 * Two rule families live here:
 *
 *   topo-contract — registration hygiene for the topology plugin
 *                 registry: registry names must be unique, and every
 *                 concrete machine in the plugin hierarchy must be
 *                 registered (an unregistered machine silently drops
 *                 out of the cross-topology conformance sweep).
 *   topo-fallback — a registered machine must override the three
 *                 per-primitive accounting hooks (exchangeStepCost,
 *                 broadcastCost, reduceCost): the hooks ARE the
 *                 topology's microarchitecture description, and a
 *                 machine that inherits another machine's costs is
 *                 describing the wrong network unless the fallback is
 *                 deliberate and justified with an allow escape.
 *
 * The shared-state immutability rule itself (rule id `shared`)
 * consumes the class graph but lives in dataflow.cc, next to the
 * mutation summaries it reuses for cross-TU witnesses.
 */

#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/rules.hh"

namespace ot::check {

/** One class/struct definition found in the run. */
struct ClassInfo
{
    std::string name;
    int file = -1; ///< ctx index of the defining file
    int line = 1;
    std::size_t bodyFirst = 0; ///< token index of the class `{`
    std::size_t bodyLast = 0;  ///< matching `}`
    /** Base-class names (unqualified), in declaration order. */
    std::vector<std::string> bases;
    /** Body contains a pure-virtual (`= 0`) declaration. */
    bool isAbstract = false;
    /** Carries the shared(post-build) marker directly. */
    bool sharedMarked = false;
    /** Marked, or derived (transitively) from a marked class. */
    bool shared = false;
    /** Member functions declared `virtual` in this body. */
    std::set<std::string> virtualNames;
    /** Virtual API: virtualNames unioned over all ancestors — the
     *  sanctioned post-build mutation surface of a shared class. */
    std::set<std::string> apiNames;
};

/** The run's class graph. */
struct ClassGraph
{
    std::vector<ClassInfo> classes;
    /** Name → index into classes (first definition wins). */
    std::map<std::string, int> byName;
};

/** Build the class graph over the run's src-layer files: class
 *  definitions, bases, virtual APIs, and shared(post-build) marker
 *  propagation through the hierarchy. */
ClassGraph buildClassGraph(const std::vector<FileContext> &ctxs);

/** Topology plugin contract rules (topo-contract, topo-fallback)
 *  over the whole run.  Raw: allow() markers are NOT applied. */
void runTopoContracts(const std::vector<FileContext> &ctxs,
                      const ClassGraph &cg,
                      std::vector<Diagnostic> &out);

} // namespace ot::check

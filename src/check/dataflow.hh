/**
 * @file
 * Interprocedural dataflow rules for otcheck: determinism taint and
 * lane-safety.
 *
 * determinism-taint
 * -----------------
 * The flat determinism rule bans nondeterminism tokens *inside* the
 * lane-reachable layers, so a one-line wrapper in an unscoped layer
 * (`uint64_t jitter() { return splitmix64(s); }` in src/analysis)
 * laundered the ban: the wrapper's file is not scanned, and the
 * in-scope caller only mentions the innocent name `jitter`.  This
 * pass closes the hole: any function whose body uses a banned
 * identifier outside an allow(determinism) extent is a taint source;
 * taint propagates over call edges and function-pointer references
 * (an identifier naming a known definition without a call's `(` —
 * the KernelTable pattern) with the usual all-candidates convention;
 * and every call or reference from a determinism-scope file to a
 * fully-tainted, fully-out-of-scope candidate set is diagnosed with
 * the complete source→sink chain.
 *
 * In-scope sources are NOT re-diagnosed here — the flat rule already
 * flags the banned token itself; this rule only reports the boundary
 * crossing, so each defect surfaces exactly once.
 *
 * lane-safety
 * -----------
 * Lambdas passed to a `parallelFor` entry point execute concurrently
 * on host lanes.  The engine discipline (DESIGN.md: per-lane buffer,
 * then deterministic merge) requires every write through a
 * by-reference capture to be indexed by the lane/shard parameter.
 * The pass finds the entry lambdas syntactically (a lambda inside a
 * `parallelFor(` argument range), tracks lane-derived locals
 * (`const Shard &sh = shards[s]` makes `sh` lane-derived, and
 * `for (std::size_t idx : sh.members)` extends it to `idx`), and
 * flags
 *
 *   - direct writes (assignment, compound assignment, ++/--, and
 *     mutating container methods) through a by-reference capture on
 *     a path with no lane-derived subscript, and
 *   - captured state passed by reference to a function whose
 *     parameter summary says it mutates that parameter (computed
 *     transitively over the call graph), with a cross-file witness.
 *
 * Method calls not on the mutating list stop the path walk silently:
 * the checker cannot see constness, and flagging reads would make
 * the rule unusable.  Engine accessors (charge, counter, traceSpan)
 * are lane-aware by design and fall under this conservative stop.
 *
 * shared
 * ------
 * A class carrying the shared(post-build) marker (or deriving from
 * one — the marker is inherited, so marking `topo::Machine` covers
 * every plugin) is handed out by the network cache and shared across
 * engine shards; after construction it may only change through the
 * virtual plugin API the engine serializes (reset, charge, the run*
 * entry points).  The pass takes the class graph from the contract
 * stage and audits every *non-API* member function for: a direct
 * member write or mutating container call; a member passed by
 * reference to a free function whose mutation summary says it writes
 * that position (cross-TU witness: "mutated by 'resizeLanes' at
 * file:line via g()"); and a returned non-const reference to a
 * member, which lets any caller mutate the shared object with no
 * rule in sight.  Deliberate backdoors (lazy caches the engine
 * serializes anyway) carry allow(shared) with the synchronization
 * argument in the justification.
 *
 * sched-purity
 * ------------
 * A function carrying the pure marker (the scenario ranking
 * functions) must be a pure ordering: no by-reference argument
 * mutation (checked through the same summaries, so a helper that
 * writes for it is caught with a witness), no non-const static local
 * state, and no call whose every candidate is determinism-tainted
 * (reusing the taint graph, so a wrapper in an unscoped layer cannot
 * launder entropy into the schedule).  Nested lambdas are part of
 * the marked function.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "check/contracts.hh"
#include "check/rules.hh"

namespace ot::check {

/** Determinism taint over the whole run.  `rounds` (optional)
 *  receives the number of propagation sweeps, for --stats. */
void runDeterminismTaint(const std::vector<FileContext> &ctxs,
                         std::vector<Diagnostic> &out,
                         std::size_t *rounds = nullptr);

/** Lane-safety race rule over the whole run. */
void runLaneSafety(const std::vector<FileContext> &ctxs,
                   std::vector<Diagnostic> &out);

/** shared(post-build) immutability/escape rule over the whole run;
 *  consumes the contract stage's class graph. */
void runSharedImmutability(const std::vector<FileContext> &ctxs,
                           const ClassGraph &cg,
                           std::vector<Diagnostic> &out);

/** Scheduler-purity rule over the functions carrying the pure
 *  marker. */
void runSchedPurity(const std::vector<FileContext> &ctxs,
                    std::vector<Diagnostic> &out);

} // namespace ot::check

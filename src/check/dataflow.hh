/**
 * @file
 * Interprocedural dataflow rules for otcheck: determinism taint and
 * lane-safety.
 *
 * determinism-taint
 * -----------------
 * The flat determinism rule bans nondeterminism tokens *inside* the
 * lane-reachable layers, so a one-line wrapper in an unscoped layer
 * (`uint64_t jitter() { return splitmix64(s); }` in src/analysis)
 * laundered the ban: the wrapper's file is not scanned, and the
 * in-scope caller only mentions the innocent name `jitter`.  This
 * pass closes the hole: any function whose body uses a banned
 * identifier outside an allow(determinism) extent is a taint source;
 * taint propagates over call edges and function-pointer references
 * (an identifier naming a known definition without a call's `(` —
 * the KernelTable pattern) with the usual all-candidates convention;
 * and every call or reference from a determinism-scope file to a
 * fully-tainted, fully-out-of-scope candidate set is diagnosed with
 * the complete source→sink chain.
 *
 * In-scope sources are NOT re-diagnosed here — the flat rule already
 * flags the banned token itself; this rule only reports the boundary
 * crossing, so each defect surfaces exactly once.
 *
 * lane-safety
 * -----------
 * Lambdas passed to a `parallelFor` entry point execute concurrently
 * on host lanes.  The engine discipline (DESIGN.md: per-lane buffer,
 * then deterministic merge) requires every write through a
 * by-reference capture to be indexed by the lane/shard parameter.
 * The pass finds the entry lambdas syntactically (a lambda inside a
 * `parallelFor(` argument range), tracks lane-derived locals
 * (`const Shard &sh = shards[s]` makes `sh` lane-derived, and
 * `for (std::size_t idx : sh.members)` extends it to `idx`), and
 * flags
 *
 *   - direct writes (assignment, compound assignment, ++/--, and
 *     mutating container methods) through a by-reference capture on
 *     a path with no lane-derived subscript, and
 *   - captured state passed by reference to a function whose
 *     parameter summary says it mutates that parameter (computed
 *     transitively over the call graph), with a cross-file witness.
 *
 * Method calls not on the mutating list stop the path walk silently:
 * the checker cannot see constness, and flagging reads would make
 * the rule unusable.  Engine accessors (charge, counter, traceSpan)
 * are lane-aware by design and fall under this conservative stop.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "check/rules.hh"

namespace ot::check {

/** Determinism taint over the whole run.  `rounds` (optional)
 *  receives the number of propagation sweeps, for --stats. */
void runDeterminismTaint(const std::vector<FileContext> &ctxs,
                         std::vector<Diagnostic> &out,
                         std::size_t *rounds = nullptr);

/** Lane-safety race rule over the whole run. */
void runLaneSafety(const std::vector<FileContext> &ctxs,
                   std::vector<Diagnostic> &out);

} // namespace ot::check

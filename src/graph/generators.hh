/**
 * @file
 * Random graph workload generators for the experiments.
 *
 * The paper evaluates graph algorithms asymptotically; to *measure*
 * them we need concrete inputs.  These generators produce the standard
 * families used for connected-components / MST benchmarks: G(n,p),
 * graphs with a planted number of components, random connected graphs
 * (random spanning tree plus extra edges) and random weighted complete
 * graphs with distinct weights (making the MST unique, which
 * simplifies verification).
 */

#pragma once

#include <cstdint>

#include "graph/graph.hh"
#include "sim/rng.hh"

namespace ot::graph {

/** Erdos-Renyi G(n, p). */
Graph randomGnp(std::size_t n, double p, sim::Rng &rng);

/**
 * A graph with exactly `components` connected components: vertices are
 * split into groups, each group gets a random spanning tree plus
 * `extra_per_component` random intra-group edges.
 */
Graph plantedComponents(std::size_t n, std::size_t components,
                        std::size_t extra_per_component, sim::Rng &rng);

/** Random connected graph: random spanning tree + `extra` edges. */
Graph randomConnected(std::size_t n, std::size_t extra, sim::Rng &rng);

/**
 * Random connected weighted graph with *distinct* edge weights (so the
 * MST is unique): spanning tree + extra edges, weights a random
 * permutation of 1..m.
 */
WeightedGraph randomWeightedConnected(std::size_t n, std::size_t extra,
                                      sim::Rng &rng);

/** Complete weighted graph with distinct random weights. */
WeightedGraph randomWeightedComplete(std::size_t n, sim::Rng &rng);

} // namespace ot::graph

/**
 * @file
 * Adjacency-matrix graphs, as assumed throughout the paper's graph
 * algorithms (Section III notes the algorithms use the adjacency
 * matrix representation, which is also what the Omega(N^2) operations
 * lower bound [33] in Section VII-C is stated for).
 */

#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "linalg/matrix.hh"

namespace ot::graph {

/** Undirected graph over vertices 0..n-1 with adjacency matrix. */
class Graph
{
  public:
    explicit Graph(std::size_t n) : _adj(n, n, 0) {}

    std::size_t vertices() const { return _adj.rows(); }

    void
    addEdge(std::size_t u, std::size_t v)
    {
        assert(u < vertices() && v < vertices());
        if (u == v)
            return;
        _adj(u, v) = 1;
        _adj(v, u) = 1;
    }

    bool
    hasEdge(std::size_t u, std::size_t v) const
    {
        return _adj(u, v) != 0;
    }

    std::size_t
    edgeCount() const
    {
        std::size_t count = 0;
        for (std::size_t i = 0; i < vertices(); ++i)
            for (std::size_t j = i + 1; j < vertices(); ++j)
                count += hasEdge(i, j);
        return count;
    }

    const linalg::BoolMatrix &adjacency() const { return _adj; }

  private:
    linalg::BoolMatrix _adj;
};

/** Sentinel weight meaning "no edge" in weighted graphs. */
inline constexpr std::uint64_t kNoEdge =
    std::numeric_limits<std::uint32_t>::max();

/**
 * Weighted undirected graph with a symmetric weight matrix; absent
 * edges carry kNoEdge.  Weights are kept below kNoEdge so that MIN
 * reductions over (weight, endpoints) tuples behave like the paper's
 * O(log N)-bit words.
 */
class WeightedGraph
{
  public:
    explicit WeightedGraph(std::size_t n) : _weight(n, n, kNoEdge)
    {
        for (std::size_t i = 0; i < n; ++i)
            _weight(i, i) = kNoEdge;
    }

    std::size_t vertices() const { return _weight.rows(); }

    void
    addEdge(std::size_t u, std::size_t v, std::uint64_t w)
    {
        assert(u < vertices() && v < vertices() && u != v);
        assert(w < kNoEdge);
        _weight(u, v) = w;
        _weight(v, u) = w;
    }

    bool
    hasEdge(std::size_t u, std::size_t v) const
    {
        return u != v && _weight(u, v) != kNoEdge;
    }

    std::uint64_t weight(std::size_t u, std::size_t v) const
    {
        return _weight(u, v);
    }

    /** The unweighted skeleton (for components of a weighted graph). */
    Graph
    skeleton() const
    {
        Graph g(vertices());
        for (std::size_t i = 0; i < vertices(); ++i)
            for (std::size_t j = i + 1; j < vertices(); ++j)
                if (hasEdge(i, j))
                    g.addEdge(i, j);
        return g;
    }

    const linalg::IntMatrix &weights() const { return _weight; }

  private:
    linalg::IntMatrix _weight;
};

} // namespace ot::graph

/**
 * @file
 * Sequential reference graph algorithms used to verify the network
 * implementations: union-find connected components and Kruskal MST.
 *
 * Component labelings are compared via the canonical "minimum vertex
 * in my component" form, which is also what the parallel algorithms
 * (Hirschberg-Chandra-Sarwate style) converge to.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "linalg/matrix.hh"

namespace ot::graph {

/** Classic union-find with path compression and union by size. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n);

    std::size_t find(std::size_t x);

    /** Returns true if x and y were in different sets. */
    bool unite(std::size_t x, std::size_t y);

    std::size_t setCount() const { return _sets; }

  private:
    std::vector<std::size_t> _parent;
    std::vector<std::size_t> _size;
    std::size_t _sets;
};

/**
 * Component label per vertex in canonical form: label[v] = smallest
 * vertex id in v's connected component.
 */
std::vector<std::size_t> connectedComponents(const Graph &g);

/** Number of connected components. */
std::size_t componentCount(const Graph &g);

/**
 * Canonicalize an arbitrary component labeling so two labelings of the
 * same partition compare equal: each label becomes the smallest vertex
 * id sharing it.
 */
std::vector<std::size_t>
canonicalizeLabels(const std::vector<std::size_t> &labels);

/** One edge of a spanning forest. */
struct Edge
{
    std::size_t u;
    std::size_t v;
    std::uint64_t w;

    bool operator==(const Edge &other) const = default;
};

/**
 * Kruskal's minimum spanning forest.  Returns edges sorted by
 * (w, u, v); for a connected graph this is the MST.
 */
std::vector<Edge> kruskalMsf(const WeightedGraph &g);

/** Total weight of an edge set. */
std::uint64_t totalWeight(const std::vector<Edge> &edges);

/**
 * Check that `edges` forms a spanning forest of g (acyclic, all edges
 * present in g, connects exactly g's components).
 */
bool isSpanningForest(const WeightedGraph &g, const std::vector<Edge> &edges);

/** Distance value meaning "unreachable". */
inline constexpr std::uint64_t kUnreachable = ~std::uint64_t{0};

/**
 * Dijkstra single-source shortest paths (non-negative weights).
 * dist[v] = kUnreachable for vertices not reachable from src.
 */
std::vector<std::uint64_t> dijkstra(const WeightedGraph &g,
                                    std::size_t src);

/**
 * Floyd-Warshall all-pairs shortest paths; D(i, i) = 0,
 * D(i, j) = kUnreachable when j is unreachable from i.
 */
linalg::IntMatrix floydWarshall(const WeightedGraph &g);

} // namespace ot::graph

#include "graph/reference_algorithms.hh"

#include <algorithm>
#include <map>
#include <numeric>

namespace ot::graph {

UnionFind::UnionFind(std::size_t n) : _parent(n), _size(n, 1), _sets(n)
{
    std::iota(_parent.begin(), _parent.end(), std::size_t{0});
}

std::size_t
UnionFind::find(std::size_t x)
{
    while (_parent[x] != x) {
        _parent[x] = _parent[_parent[x]];
        x = _parent[x];
    }
    return x;
}

bool
UnionFind::unite(std::size_t x, std::size_t y)
{
    std::size_t rx = find(x);
    std::size_t ry = find(y);
    if (rx == ry)
        return false;
    if (_size[rx] < _size[ry])
        std::swap(rx, ry);
    _parent[ry] = rx;
    _size[rx] += _size[ry];
    --_sets;
    return true;
}

std::vector<std::size_t>
connectedComponents(const Graph &g)
{
    const std::size_t n = g.vertices();
    UnionFind uf(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (g.hasEdge(i, j))
                uf.unite(i, j);

    std::vector<std::size_t> labels(n);
    for (std::size_t v = 0; v < n; ++v)
        labels[v] = uf.find(v);
    return canonicalizeLabels(labels);
}

std::size_t
componentCount(const Graph &g)
{
    auto labels = connectedComponents(g);
    std::vector<std::size_t> sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    return static_cast<std::size_t>(
        std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

std::vector<std::size_t>
canonicalizeLabels(const std::vector<std::size_t> &labels)
{
    std::map<std::size_t, std::size_t> smallest;
    for (std::size_t v = 0; v < labels.size(); ++v) {
        auto [it, fresh] = smallest.try_emplace(labels[v], v);
        if (!fresh)
            it->second = std::min(it->second, v);
    }
    std::vector<std::size_t> out(labels.size());
    for (std::size_t v = 0; v < labels.size(); ++v)
        out[v] = smallest[labels[v]];
    return out;
}

std::vector<Edge>
kruskalMsf(const WeightedGraph &g)
{
    const std::size_t n = g.vertices();
    std::vector<Edge> edges;
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v = u + 1; v < n; ++v)
            if (g.hasEdge(u, v))
                edges.push_back({u, v, g.weight(u, v)});

    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  return std::tie(a.w, a.u, a.v) < std::tie(b.w, b.u, b.v);
              });

    UnionFind uf(n);
    std::vector<Edge> msf;
    for (const Edge &e : edges)
        if (uf.unite(e.u, e.v))
            msf.push_back(e);
    return msf;
}

std::uint64_t
totalWeight(const std::vector<Edge> &edges)
{
    std::uint64_t total = 0;
    for (const Edge &e : edges)
        total += e.w;
    return total;
}

std::vector<std::uint64_t>
dijkstra(const WeightedGraph &g, std::size_t src)
{
    const std::size_t n = g.vertices();
    std::vector<std::uint64_t> dist(n, kUnreachable);
    std::vector<bool> done(n, false);
    dist[src] = 0;
    for (std::size_t round = 0; round < n; ++round) {
        std::size_t best = n;
        for (std::size_t v = 0; v < n; ++v)
            if (!done[v] && dist[v] != kUnreachable &&
                (best == n || dist[v] < dist[best]))
                best = v;
        if (best == n)
            break;
        done[best] = true;
        for (std::size_t v = 0; v < n; ++v)
            if (g.hasEdge(best, v) &&
                dist[best] + g.weight(best, v) < dist[v])
                dist[v] = dist[best] + g.weight(best, v);
    }
    return dist;
}

linalg::IntMatrix
floydWarshall(const WeightedGraph &g)
{
    const std::size_t n = g.vertices();
    linalg::IntMatrix d(n, n, kUnreachable);
    for (std::size_t i = 0; i < n; ++i) {
        d(i, i) = 0;
        for (std::size_t j = 0; j < n; ++j)
            if (g.hasEdge(i, j))
                d(i, j) = g.weight(i, j);
    }
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = 0; i < n; ++i) {
            if (d(i, k) == kUnreachable)
                continue;
            for (std::size_t j = 0; j < n; ++j) {
                if (d(k, j) == kUnreachable)
                    continue;
                std::uint64_t through = d(i, k) + d(k, j);
                if (through < d(i, j))
                    d(i, j) = through;
            }
        }
    return d;
}

bool
isSpanningForest(const WeightedGraph &g, const std::vector<Edge> &edges)
{
    const std::size_t n = g.vertices();
    UnionFind uf(n);
    for (const Edge &e : edges) {
        if (e.u >= n || e.v >= n || !g.hasEdge(e.u, e.v))
            return false;
        if (g.weight(e.u, e.v) != e.w)
            return false;
        if (!uf.unite(e.u, e.v))
            return false; // cycle
    }
    // Must connect exactly the components of g.
    return uf.setCount() == componentCount(g.skeleton());
}

} // namespace ot::graph

#include "graph/generators.hh"

#include <algorithm>
#include <cassert>
#include <vector>

namespace ot::graph {

Graph
randomGnp(std::size_t n, double p, sim::Rng &rng)
{
    Graph g(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (rng.bernoulli(p))
                g.addEdge(i, j);
    return g;
}

namespace {

/** Add a uniform random spanning tree over `group` to g. */
void
addRandomTree(Graph &g, const std::vector<std::size_t> &group,
              sim::Rng &rng)
{
    // Random attachment: vertex k links to a uniformly random earlier
    // vertex — produces a random (non-uniform) tree, fine for
    // workloads.
    for (std::size_t k = 1; k < group.size(); ++k) {
        std::size_t j = static_cast<std::size_t>(rng.uniform(0, k - 1));
        g.addEdge(group[k], group[j]);
    }
}

} // namespace

Graph
plantedComponents(std::size_t n, std::size_t components,
                  std::size_t extra_per_component, sim::Rng &rng)
{
    assert(components >= 1 && components <= n);
    Graph g(n);

    // Random assignment of vertices to groups, each group non-empty.
    auto perm = rng.permutation(n);
    std::vector<std::vector<std::size_t>> groups(components);
    for (std::size_t c = 0; c < components; ++c)
        groups[c].push_back(static_cast<std::size_t>(perm[c]));
    for (std::size_t i = components; i < n; ++i) {
        std::size_t c =
            static_cast<std::size_t>(rng.uniform(0, components - 1));
        groups[c].push_back(static_cast<std::size_t>(perm[i]));
    }

    for (auto &group : groups) {
        addRandomTree(g, group, rng);
        for (std::size_t e = 0; e < extra_per_component; ++e) {
            if (group.size() < 2)
                break;
            auto a = group[rng.uniform(0, group.size() - 1)];
            auto b = group[rng.uniform(0, group.size() - 1)];
            if (a != b)
                g.addEdge(a, b);
        }
    }
    return g;
}

Graph
randomConnected(std::size_t n, std::size_t extra, sim::Rng &rng)
{
    return plantedComponents(n, 1, extra, rng);
}

WeightedGraph
randomWeightedConnected(std::size_t n, std::size_t extra, sim::Rng &rng)
{
    Graph skeleton = randomConnected(n, extra, rng);
    WeightedGraph g(n);

    // Collect edges, then assign a random permutation of 1..m as
    // weights so all weights are distinct.
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (skeleton.hasEdge(i, j))
                edges.emplace_back(i, j);

    auto weights = rng.permutation(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e)
        g.addEdge(edges[e].first, edges[e].second, weights[e] + 1);
    return g;
}

WeightedGraph
randomWeightedComplete(std::size_t n, sim::Rng &rng)
{
    WeightedGraph g(n);
    std::size_t m = n * (n - 1) / 2;
    auto weights = rng.permutation(m);
    std::size_t e = 0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            g.addEdge(i, j, weights[e++] + 1);
    return g;
}

} // namespace ot::graph

#include "workload/network_cache.hh"

#include <cassert>

#include "workload/spec.hh"

namespace ot::workload {

std::string
toString(MachineForm form)
{
    switch (form) {
      case MachineForm::Otn:
        return "otn";
      case MachineForm::OtcNative:
        return "otc";
      case MachineForm::OtcEmulated:
        return "otc-emu";
    }
    return "?";
}

std::string
toString(const CacheKey &key)
{
    std::string out = toString(key.form) + ":n=" + std::to_string(key.n);
    if (key.cycleLen)
        out += ":l=" + std::to_string(key.cycleLen);
    out += ":" + shortName(key.model);
    out += ":w=" + std::to_string(key.wordBits);
    if (key.scaled)
        out += ":scaled";
    return out;
}

void
NetworkCache::checkCost(const CacheKey &key, const vlsi::CostModel &cost)
{
    assert(cost.delayModel() == key.model &&
           "workload: delay model mismatched within a cache key");
    assert(cost.word().bits() == key.wordBits &&
           "workload: word format mismatched within a cache key");
    assert(cost.scaledTrees() == key.scaled &&
           "workload: tree scaling mismatched within a cache key");
    (void)key;
    (void)cost;
}

otn::OrthogonalTreesNetwork &
NetworkCache::acquireOtn(const CacheKey &key, const vlsi::CostModel &cost)
{
    assert(key.form == MachineForm::Otn && "acquireOtn: wrong form");
    checkCost(key, cost);
    auto it = _otn.find(key);
    if (it != _otn.end()) {
        ++_hits;
        return *it->second;
    }
    ++_misses;
    auto net = std::make_unique<otn::OrthogonalTreesNetwork>(
        key.n, cost, layout::LayoutParams{}, /*host_threads=*/1);
    auto &ref = *net;
    _otn.emplace(key, std::move(net));
    return ref;
}

otc::OtcNetwork &
NetworkCache::acquireOtcNative(const CacheKey &key,
                               const vlsi::CostModel &cost)
{
    assert(key.form == MachineForm::OtcNative &&
           "acquireOtcNative: wrong form");
    assert(key.cycleLen >= 1 && "acquireOtcNative: cycle length not set");
    checkCost(key, cost);
    auto it = _otc.find(key);
    if (it != _otc.end()) {
        ++_hits;
        return *it->second;
    }
    ++_misses;
    auto net = std::make_unique<otc::OtcNetwork>(
        key.n / key.cycleLen, key.cycleLen, cost, /*host_threads=*/1);
    auto &ref = *net;
    _otc.emplace(key, std::move(net));
    return ref;
}

otc::OtcEmulatedOtn &
NetworkCache::acquireOtcEmulated(const CacheKey &key,
                                 const vlsi::CostModel &cost)
{
    assert(key.form == MachineForm::OtcEmulated &&
           "acquireOtcEmulated: wrong form");
    checkCost(key, cost);
    auto it = _emulated.find(key);
    if (it != _emulated.end()) {
        ++_hits;
        return *it->second;
    }
    ++_misses;
    auto net = std::make_unique<otc::OtcEmulatedOtn>(
        key.n, cost, key.cycleLen, /*host_threads=*/1);
    auto &ref = *net;
    _emulated.emplace(key, std::move(net));
    return ref;
}

} // namespace ot::workload

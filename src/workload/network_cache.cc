#include "workload/network_cache.hh"

#include <cassert>

namespace ot::workload {

void
NetworkCache::checkCost(const CacheKey &key, const vlsi::CostModel &cost)
{
    assert(cost.delayModel() == key.model &&
           "workload: delay model mismatched within a cache key");
    assert(cost.word().bits() == key.wordBits &&
           "workload: word format mismatched within a cache key");
    assert(cost.scaledTrees() == key.scaled &&
           "workload: tree scaling mismatched within a cache key");
    (void)key;
    (void)cost;
}

topo::Machine &
NetworkCache::acquire(const CacheKey &key, const vlsi::CostModel &cost)
{
    checkCost(key, cost);
    auto it = _machines.find(key);
    if (it != _machines.end()) {
        ++_hits;
        return *it->second;
    }
    ++_misses;
    auto machine = topo::registry().build(key);
    auto &ref = *machine;
    _machines.emplace(key, std::move(machine));
    return ref;
}

} // namespace ot::workload

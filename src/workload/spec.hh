/**
 * @file
 * Workload specifications: batches of heterogeneous problem instances.
 *
 * Section VIII of the paper argues the OTN's real strength is *serving*
 * streams of independent problems, not single runs.  A WorkloadSpec is
 * the host-side description of such a stream: each InstanceSpec names
 * an algorithm (sort / matmul / Boolean matmul / connected components
 * / MST / shortest paths), a topology from the topo registry ("otn",
 * "otc", "mesh", "fattree", ...), a problem size, a delay model, and a
 * seed for the deterministic input generator.  The BatchEngine
 * (engine.hh) shards a batch over host threads and the NetworkCache
 * reuses one simulated machine per distinct shape.
 *
 * Specs are written either as compact CLI tokens
 * (`algo:net:n:model[:scaled][:seed=K]`) or as a small JSON document
 * (`{"instances": [{"algo": "sort", "net": "otn", "n": 64, ...}]}`);
 * both forms parse with error strings, never by dying, so `otsim
 * batch` can reject bad input politely.  validate() is the engine-side
 * contract and asserts.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/algo.hh"
#include "vlsi/delay.hh"

namespace ot::workload {

/** The algorithms a batch may mix (the paper's Tables I-III rows). */
using Algo = topo::Algo;

/** Short spelling used by the CLI/JSON forms ("sort", "cc", ...). */
using topo::toString;

/** Short delay-model spelling: "log", "const" or "linear". */
using topo::shortName;

/** One problem instance of a batch. */
struct InstanceSpec
{
    Algo algo = Algo::Sort;
    /** Registry name of the topology the instance runs on. */
    std::string net = "otn";
    /** Problem size N (power of two, >= 2). */
    std::size_t n = 64;
    vlsi::DelayModel model = vlsi::DelayModel::Logarithmic;
    /** Thompson's scaled trees (constant-delay tree edges). */
    bool scaled = false;
    /** Seed of the deterministic input generator. */
    std::uint64_t seed = 1;

    /** Ordered so instance sets / maps can key on the spec. */
    auto operator<=>(const InstanceSpec &other) const = default;
};

/** A batch of instances, executed together by the BatchEngine. */
struct WorkloadSpec
{
    std::vector<InstanceSpec> instances;
};

/**
 * Engine-side contract: a batch must be non-empty and every instance
 * size a power of two in [2, 16384] (the machines round N up, which
 * would silently change the problem).  Violations are programming
 * errors and assert; CLI front ends should call describeInvalid()
 * first.
 */
void validate(const WorkloadSpec &spec);

/**
 * Non-fatal validation: "" when the spec satisfies validate(),
 * otherwise a one-line description of the first problem found.
 */
std::string describeInvalid(const WorkloadSpec &spec);

/**
 * Parse one CLI instance token, `algo:net:n:model[:scaled][:seed=K]`,
 * e.g. "sort:otn:64:log", "mst:otc:32:const:scaled:seed=7".  Returns
 * false and sets `err` on malformed input.
 */
bool parseInstance(const std::string &token, InstanceSpec &out,
                   std::string &err);

/**
 * The instance as the CLI token parseInstance accepts (defaults
 * elided): `algo:net:n:model[:scaled][:seed=K]`.
 */
std::string toToken(const InstanceSpec &inst);

/**
 * Parse a JSON workload document: an object whose "instances" key
 * holds an array of objects with keys "algo", "net", "n", "model",
 * "scaled" and "seed" (all but "algo" optional, with the InstanceSpec
 * defaults).  Accepts exactly that shape — this is a workload-spec
 * reader, not a general JSON library.  Returns false and sets `err`
 * (with a byte offset) on malformed input.
 */
bool parseWorkloadJson(const std::string &text, WorkloadSpec &out,
                       std::string &err);

/** The spec as JSON in the form parseWorkloadJson accepts. */
std::string toJson(const WorkloadSpec &spec);

/**
 * The acceptance-mix demo batch: 12 instances spanning both machine
 * families, two problem sizes, two delay models and all five
 * algorithms, with repeated shapes so the NetworkCache gets hits.
 */
WorkloadSpec demoWorkload();

} // namespace ot::workload

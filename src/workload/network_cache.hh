/**
 * @file
 * Memoizing cache of constructed network simulators.
 *
 * Building a machine is the expensive part of serving a request: the
 * constructor lays out the chip, and the first primitive computes the
 * tree traversal/reduce costs from that geometry (cached per network,
 * see otn::OrthogonalTreesNetwork::treeTraversalCost).  Two instances
 * with the same *shape* — machine form, problem size, cycle length,
 * delay model, word width, scaling — are served by the same machine
 * object, so repeated shapes in a batch skip construction and reuse
 * the warmed cost caches.  The key deliberately excludes the
 * algorithm: CONNECT and a Boolean product at the same N run on
 * machines with identical geometry and share one entry.
 *
 * The cache key *is* the cost model (plus geometry): every acquire
 * asserts that the caller's CostModel agrees with the key, so a batch
 * can never run an instance under a different delay model than the
 * machine it shares was built for.
 *
 * Cached machines are built with host_threads = 1: the BatchEngine
 * shards whole instances across host lanes, and the machines' inner
 * pardo loops then run inline on their lane (model time is
 * bit-identical at any setting — see sim/chain_engine.hh).
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "otc/emulated_otn.hh"
#include "otc/network.hh"
#include "otn/network.hh"
#include "vlsi/cost_model.hh"
#include "vlsi/delay.hh"

namespace ot::workload {

/** The machine families a cache entry can hold. */
enum class MachineForm : std::uint8_t {
    Otn,         ///< plain (N x N)-OTN
    OtcNative,   ///< (N/L x N/L)-OTC streaming machine (SORT-OTC)
    OtcEmulated, ///< OTC-emulated OTN (Section V-A)
};

/** "otn", "otc" or "otc-emu". */
std::string toString(MachineForm form);

/** Shape of one cached machine: geometry plus cost rules. */
struct CacheKey
{
    MachineForm form = MachineForm::Otn;
    /** Problem size N (the emulated/base side, or K*L for the OTC). */
    std::size_t n = 0;
    /** Cycle length L of the OTC forms; 0 for the plain OTN. */
    unsigned cycleLen = 0;
    vlsi::DelayModel model = vlsi::DelayModel::Logarithmic;
    unsigned wordBits = 0;
    bool scaled = false;

    auto operator<=>(const CacheKey &other) const = default;
};

/** Human-readable key, e.g. "otn:n=32:log:w=10" (for reports). */
std::string toString(const CacheKey &key);

/**
 * The network memo.  acquire*() returns the cached machine for a key,
 * constructing it on the first request; hits() / misses() count the
 * lookups.  Machines keep register state between acquisitions — the
 * BatchEngine resets them per instance — and their model-time
 * accountants are per-machine, so callers measure runs with
 * resetTime() + now().
 */
class NetworkCache
{
  public:
    NetworkCache() = default;

    NetworkCache(const NetworkCache &) = delete;
    NetworkCache &operator=(const NetworkCache &) = delete;

    /** The plain OTN for `key` (form must be Otn). */
    otn::OrthogonalTreesNetwork &acquireOtn(const CacheKey &key,
                                            const vlsi::CostModel &cost);

    /** The native OTC for `key` (form must be OtcNative). */
    otc::OtcNetwork &acquireOtcNative(const CacheKey &key,
                                      const vlsi::CostModel &cost);

    /** The OTC-emulated OTN for `key` (form must be OtcEmulated). */
    otc::OtcEmulatedOtn &acquireOtcEmulated(const CacheKey &key,
                                            const vlsi::CostModel &cost);

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

    /** Distinct machines currently cached. */
    std::size_t size() const
    {
        return _otn.size() + _otc.size() + _emulated.size();
    }

    /** Drop every cached machine (counters keep their values). */
    void
    clear()
    {
        _otn.clear();
        _otc.clear();
        _emulated.clear();
    }

  private:
    /** Key/cost agreement contract shared by the acquire methods. */
    static void checkCost(const CacheKey &key, const vlsi::CostModel &cost);

    std::map<CacheKey, std::unique_ptr<otn::OrthogonalTreesNetwork>> _otn;
    std::map<CacheKey, std::unique_ptr<otc::OtcNetwork>> _otc;
    std::map<CacheKey, std::unique_ptr<otc::OtcEmulatedOtn>> _emulated;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace ot::workload

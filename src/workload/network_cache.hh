/**
 * @file
 * Memoizing cache of constructed network simulators.
 *
 * Building a machine is the expensive part of serving a request: the
 * constructor lays out the chip, and the first primitive computes the
 * tree traversal/reduce costs from that geometry (cached per network,
 * see otn::OrthogonalTreesNetwork::treeTraversalCost).  Two instances
 * with the same *shape* — topology name, problem size, cycle length,
 * delay model, word width, scaling — are served by the same machine
 * object, so repeated shapes in a batch skip construction and reuse
 * the warmed cost caches.  The key deliberately excludes the
 * algorithm: CONNECT and a Boolean product at the same N run on
 * machines with identical geometry and share one entry.
 *
 * The cache key *is* the build spec of the topo registry: every
 * acquire asserts that the caller's CostModel agrees with the key, so
 * a batch can never run an instance under a different delay model than
 * the machine it shares was built for.
 *
 * Cached machines are built with host_threads = 1: the BatchEngine
 * shards whole instances across host lanes, and the machines' inner
 * pardo loops then run inline on their lane (model time is
 * bit-identical at any setting — see sim/chain_engine.hh).
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "topo/machine.hh"
#include "topo/registry.hh"
#include "vlsi/cost_model.hh"

namespace ot::workload {

/** Shape of one cached machine: the topo build spec. */
using CacheKey = topo::MachineSpec;

/** Human-readable key, e.g. "otn:n=32:log:w=10" (for reports). */
using topo::toString;

/**
 * The network memo.  acquire() returns the cached machine for a key,
 * constructing it through the topo registry on the first request;
 * hits() / misses() count the lookups.  Machines keep register state
 * between acquisitions — the BatchEngine resets them per instance —
 * and their model-time accountants are per-machine, so callers measure
 * runs with reset() + now().
 *
 * The handed-out machines are shared(post-build): topo::Machine
 * carries the otcheck marker, so any post-construction mutation
 * outside the virtual API the engine serializes is a static analysis
 * error (rule `shared`), not just a TSan finding.
 */
class NetworkCache
{
  public:
    NetworkCache() = default;

    NetworkCache(const NetworkCache &) = delete;
    NetworkCache &operator=(const NetworkCache &) = delete;

    /** The machine for `key`, built by the registry on first use. */
    topo::Machine &acquire(const CacheKey &key,
                           const vlsi::CostModel &cost);

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

    /** Distinct machines currently cached. */
    std::size_t size() const { return _machines.size(); }

    /** Drop every cached machine (counters keep their values). */
    void clear() { _machines.clear(); }

  private:
    /** Key/cost agreement contract of acquire(). */
    static void checkCost(const CacheKey &key, const vlsi::CostModel &cost);

    std::map<CacheKey, std::unique_ptr<topo::Machine>> _machines;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace ot::workload

/**
 * @file
 * The batched multi-instance workload engine (Section VIII as a
 * serving system).
 *
 * A BatchEngine accepts a WorkloadSpec — a batch of heterogeneous
 * problem instances — and executes it as a *machine farm*: instances
 * are grouped by machine shape (one NetworkCache entry per shape),
 * each group runs sequentially on its shared machine, and the groups
 * run in parallel, one farm shard per group.  The engine's own
 * ChainEngine shards the groups over host threads (OT_HOST_THREADS)
 * and charges model time with the same max-of-chains rule as the
 * networks' pardo loops, so the aggregate makespan is the farm's
 * parallel completion time:
 *
 *     makespan = max over shards of (sum of the shard's instance
 *                times);  total work = sum of all instance times.
 *
 * Everything reported — per-instance model times, the aggregate, the
 * cache counters, the trace stream — derives from model time and
 * deterministic inputs only, so reports are byte-identical at every
 * host-thread count (the PR 1 determinism contract, enforced by
 * tests/test_workload.cc).
 *
 * Every instance is verified against its sequential reference (sorted
 * order, linalg::matMul, union-find components, Kruskal, Dijkstra); a
 * report with verified=false on any instance means a simulator bug,
 * and `otsim batch` exits nonzero on it.
 *
 * Machines come from the topo registry: an instance's `net` names any
 * registered topology, and the engine runs and verifies it through the
 * topo::Machine interface without knowing the family.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/chain_engine.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "topo/machine.hh"
#include "trace/tracer.hh"
#include "vlsi/delay.hh"
#include "workload/network_cache.hh"
#include "workload/spec.hh"

namespace ot::workload {

using vlsi::ModelTime;

/** Machine shape and cost rules an instance resolves to. */
CacheKey cacheKeyFor(const InstanceSpec &inst);

/** The cost model matching cacheKeyFor(inst) (asserted by the cache). */
vlsi::CostModel costModelFor(const InstanceSpec &inst);

/** Outcome of one instance of a batch. */
struct InstanceReport
{
    InstanceSpec spec;
    /** Submission order index within the batch. */
    std::size_t index = 0;
    /** Farm shard (machine-shape group) the instance ran on. */
    std::size_t shard = 0;
    /** Did the NetworkCache already hold this instance's machine? */
    bool cacheHit = false;
    /** Result matched the sequential reference. */
    bool verified = false;
    /** Model time of this instance's run on its machine. */
    ModelTime time = 0;
    /** Parallel steps the machine charged. */
    std::uint64_t steps = 0;
    /** Chip area of the machine (lambda^2). */
    std::uint64_t area = 0;
};

/** Per-batch aggregate + per-instance outcomes. */
struct BatchReport
{
    /** Per-instance outcomes, in submission order. */
    std::vector<InstanceReport> instances;
    /** Farm completion time: max over shards of summed times. */
    ModelTime makespan = 0;
    /** Sum of all instance model times. */
    ModelTime totalWork = 0;
    /** Distinct machine shapes (= farm shards). */
    std::size_t shards = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    /** True iff every instance verified against its reference. */
    bool allVerified() const;

    /**
     * The report as JSON.  Contains only model-time-derived and
     * spec-derived data — no host timing, thread counts or pointers —
     * so the bytes are identical at every OT_HOST_THREADS.
     */
    std::string toJson() const;

    /** Human-readable table + aggregate lines (same data as toJson). */
    void writeText(std::ostream &os) const;
};

/** Executes WorkloadSpecs; owns the clock, stats and network cache. */
class BatchEngine
{
  public:
    /**
     * @param host_threads Lanes to shard the farm over: 0 = the
     *                     OT_HOST_THREADS switch, 1 = sequential.
     *                     Reports are bit-identical for every setting.
     */
    explicit BatchEngine(unsigned host_threads = 0);

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /**
     * Run one batch (validate()d first — empty batches and
     * non-power-of-two sizes assert).  The cache persists across
     * run() calls, so a repeated batch is served entirely by hits.
     */
    BatchReport run(const WorkloadSpec &spec);

    NetworkCache &cache() { return _cache; }
    sim::StatSet &stats() { return _stats; }
    sim::TimeAccountant &acct() { return _acct; }

    /** Model time accumulated over all run() calls. */
    ModelTime now() const { return _acct.now(); }

    unsigned hostThreads() const { return _engine.hostThreads(); }

    /**
     * Attach a model-time tracer: per-instance spans, the charge
     * stream and the batch phase markers are recorded, merged in
     * deterministic (submission) order.  nullptr detaches.
     */
    void
    setTracer(trace::Tracer *tracer)
    {
        _acct.setTracer(tracer);
        _engine.setTracer(tracer);
    }

    trace::Tracer *tracer() const { return _engine.tracer(); }

  private:
    /** One farm shard: a machine and the instances it serves. */
    struct Shard
    {
        CacheKey key;
        topo::Machine *machine = nullptr;
        std::vector<std::size_t> members;
    };

    /** Reset, run and verify one instance; fills the report entry. */
    ModelTime runInstance(const InstanceSpec &inst, const Shard &shard,
                          InstanceReport &out);

    sim::TimeAccountant _acct;
    sim::StatSet _stats;
    sim::ChainEngine _engine;
    NetworkCache _cache;
};

} // namespace ot::workload

#include "workload/engine.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <map>
#include <sstream>

#include "graph/generators.hh"
#include "graph/reference_algorithms.hh"
#include "linalg/reference.hh"
#include "sim/rng.hh"

namespace ot::workload {

namespace {

/** Stable span label per algorithm (the tracer keeps the pointer). */
const char *
algoSpanName(Algo algo)
{
    switch (algo) {
      case Algo::Sort:
        return "sort";
      case Algo::MatMul:
        return "matmul";
      case Algo::BoolMatMul:
        return "boolmm";
      case Algo::ConnectedComponents:
        return "cc";
      case Algo::Mst:
        return "mst";
      case Algo::ShortestPaths:
        return "sssp";
    }
    return "?";
}

/** Input values of a sort instance. */
std::vector<std::uint64_t>
sortValues(std::size_t n, sim::Rng &rng)
{
    std::vector<std::uint64_t> out(n);
    for (auto &x : out)
        x = rng.uniform(0, n - 1);
    return out;
}

/** Input matrices of a matmul instance (entries in [0, 9]). */
linalg::IntMatrix
randomIntMatrix(std::size_t n, sim::Rng &rng)
{
    linalg::IntMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.uniform(0, 9);
    return m;
}

/** Input matrices of a Boolean matmul instance (density 0.35). */
linalg::BoolMatrix
randomBoolMatrix(std::size_t n, sim::Rng &rng)
{
    linalg::BoolMatrix m(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.bernoulli(0.35) ? 1 : 0;
    return m;
}

/** Nonzero-pattern equality of a product against the Boolean ref. */
bool
boolProductMatches(const linalg::IntMatrix &got,
                   const linalg::BoolMatrix &expect)
{
    if (got.rows() != expect.rows() || got.cols() != expect.cols())
        return false;
    for (std::size_t i = 0; i < got.rows(); ++i)
        for (std::size_t j = 0; j < got.cols(); ++j)
            if ((got(i, j) != 0) != (expect(i, j) != 0))
                return false;
    return true;
}

} // namespace

CacheKey
cacheKeyFor(const InstanceSpec &inst)
{
    return topo::resolveSpec(inst.net, inst.algo, inst.n, inst.model,
                             inst.scaled);
}

vlsi::CostModel
costModelFor(const InstanceSpec &inst)
{
    return cacheKeyFor(inst).cost();
}

bool
BatchReport::allVerified() const
{
    for (const InstanceReport &r : instances)
        if (!r.verified)
            return false;
    return true;
}

std::string
BatchReport::toJson() const
{
    std::ostringstream os;
    os << "{\"instances\": [";
    for (const InstanceReport &r : instances) {
        if (r.index)
            os << ",";
        os << "\n  {\"index\": " << r.index;
        os << ", \"algo\": \"" << toString(r.spec.algo) << "\"";
        os << ", \"net\": \"" << r.spec.net << "\"";
        os << ", \"n\": " << r.spec.n;
        os << ", \"model\": \"" << shortName(r.spec.model) << "\"";
        os << ", \"scaled\": " << (r.spec.scaled ? "true" : "false");
        os << ", \"seed\": " << r.spec.seed;
        os << ", \"shard\": " << r.shard;
        os << ", \"cache\": \"" << (r.cacheHit ? "hit" : "miss") << "\"";
        os << ", \"verified\": " << (r.verified ? "true" : "false");
        os << ", \"model_time\": " << r.time;
        os << ", \"steps\": " << r.steps;
        os << ", \"area\": " << r.area << "}";
    }
    os << "\n], \"aggregate\": {";
    os << "\"instances\": " << instances.size();
    os << ", \"shards\": " << shards;
    os << ", \"model_makespan\": " << makespan;
    os << ", \"model_total_work\": " << totalWork;
    os << ", \"cache_hits\": " << cacheHits;
    os << ", \"cache_misses\": " << cacheMisses;
    os << ", \"verified\": " << (allVerified() ? "true" : "false");
    os << "}}\n";
    return os.str();
}

void
BatchReport::writeText(std::ostream &os) const
{
    os << std::left << std::setw(4) << "#" << std::setw(8) << "algo"
       << std::setw(5) << "net" << std::right << std::setw(6) << "n"
       << "  " << std::left << std::setw(7) << "model" << std::setw(6)
       << "cache" << std::setw(4) << "ok" << std::right << std::setw(12)
       << "time" << std::setw(14) << "area" << "\n";
    for (const InstanceReport &r : instances) {
        os << std::left << std::setw(4) << r.index << std::setw(8)
           << toString(r.spec.algo) << std::setw(5) << r.spec.net
           << std::right << std::setw(6)
           << r.spec.n << "  " << std::left << std::setw(7)
           << shortName(r.spec.model) << std::setw(6)
           << (r.cacheHit ? "hit" : "miss") << std::setw(4)
           << (r.verified ? "yes" : "NO") << std::right << std::setw(12)
           << r.time << std::setw(14) << r.area << "\n";
    }
    os << instances.size() << " instances on " << shards
       << " machine(s): makespan " << makespan << ", total work "
       << totalWork << ", cache " << cacheHits << " hit(s) / "
       << cacheMisses << " miss(es), "
       << (allVerified() ? "all verified" : "VERIFICATION FAILED")
       << "\n";
}

BatchEngine::BatchEngine(unsigned host_threads)
    : _engine(_acct, _stats, host_threads)
{
}

BatchReport
BatchEngine::run(const WorkloadSpec &spec)
{
    validate(spec);

    BatchReport report;
    report.instances.resize(spec.instances.size());

    const std::uint64_t hits0 = _cache.hits();
    const std::uint64_t misses0 = _cache.misses();

    // Resolve instances to farm shards, in submission order: one shard
    // per distinct machine shape, each backed by one cache entry.  The
    // acquires run on the main thread (the cache is not locked), and
    // hit/miss per instance is deterministic by construction.
    std::vector<Shard> shards;
    std::map<CacheKey, std::size_t> shardOf;
    for (std::size_t i = 0; i < spec.instances.size(); ++i) {
        const InstanceSpec &inst = spec.instances[i];
        const CacheKey key = cacheKeyFor(inst);
        const vlsi::CostModel cost = costModelFor(inst);

        auto [it, fresh] = shardOf.try_emplace(key, shards.size());
        if (fresh) {
            Shard sh;
            sh.key = key;
            shards.push_back(sh);
        }
        Shard &sh = shards[it->second];

        const std::uint64_t before = _cache.hits();
        sh.machine = &_cache.acquire(key, cost);
        sh.members.push_back(i);

        InstanceReport &r = report.instances[i];
        r.spec = inst;
        r.index = i;
        r.shard = it->second;
        r.cacheHit = _cache.hits() > before;
    }

    report.shards = shards.size();
    report.cacheHits = _cache.hits() - hits0;
    report.cacheMisses = _cache.misses() - misses0;
    _stats.counter("workload.instances") += spec.instances.size();
    _stats.counter("workload.shards") += shards.size();
    _stats.counter("workload.cache.hit") += report.cacheHits;
    _stats.counter("workload.cache.miss") += report.cacheMisses;

    // The farm: shards run in parallel (disjoint machines), instances
    // within a shard queue on their shared machine.  parallelFor
    // charges the longest shard chain — the farm makespan.
    sim::ScopedPhase phase(_acct, "workload.batch");
    report.makespan = _engine.parallelFor(shards.size(), [&](std::size_t s) {
        const Shard &sh = shards[s];
        for (std::size_t idx : sh.members) {
            const InstanceSpec &inst = spec.instances[idx];
            InstanceReport &r = report.instances[idx];
            ModelTime dt = runInstance(inst, sh, r);
            sim::ChainEngine::SpanArgs args;
            args.tree = static_cast<std::int64_t>(idx);
            args.words = inst.n;
            _engine.traceSpan("workload", algoSpanName(inst.algo), dt,
                              args);
            _engine.charge(dt);
            ++_engine.counter(std::string("workload.algo.") +
                              toString(inst.algo));
        }
    });

    for (const InstanceReport &r : report.instances)
        report.totalWork += r.time;
    return report;
}

ModelTime
BatchEngine::runInstance(const InstanceSpec &inst, const Shard &shard,
                         InstanceReport &out)
{
    sim::Rng rng(inst.seed);
    topo::Machine &m = *shard.machine;
    m.reset();

    std::uint64_t areaOverride = 0;
    switch (inst.algo) {
      case Algo::Sort: {
        auto values = sortValues(inst.n, rng);
        auto expect = values;
        std::sort(expect.begin(), expect.end());
        auto r = m.runSort(values);
        out.verified = r.sorted == expect;
        out.time = r.time;
        areaOverride = r.area;
        break;
      }
      case Algo::MatMul: {
        auto a = randomIntMatrix(inst.n, rng);
        auto b = randomIntMatrix(inst.n, rng);
        auto r = m.runMatMul(a, b);
        out.verified = r.product == linalg::matMul(a, b);
        out.time = r.time;
        areaOverride = r.area;
        break;
      }
      case Algo::BoolMatMul: {
        auto a = randomBoolMatrix(inst.n, rng);
        auto b = randomBoolMatrix(inst.n, rng);
        auto expect = linalg::boolMatMul(a, b);
        auto r = m.runBoolMatMul(a, b);
        out.verified = boolProductMatches(r.product, expect);
        out.time = r.time;
        areaOverride = r.area;
        break;
      }
      case Algo::ConnectedComponents: {
        auto g = graph::randomGnp(inst.n, 0.1, rng);
        auto expect = graph::connectedComponents(g);
        auto r = m.runConnectedComponents(g);
        out.verified = r.labels == expect;
        out.time = r.time;
        areaOverride = r.area;
        break;
      }
      case Algo::Mst: {
        auto g = graph::randomWeightedConnected(inst.n, 2 * inst.n, rng);
        auto expect = graph::kruskalMsf(g);
        auto r = m.runMst(g);
        out.verified = r.edges == expect;
        out.time = r.time;
        areaOverride = r.area;
        break;
      }
      case Algo::ShortestPaths: {
        auto g = graph::randomWeightedConnected(inst.n, 2 * inst.n, rng);
        auto src = static_cast<std::size_t>(
            rng.uniform(0, inst.n - 1));
        auto expect = graph::dijkstra(g, src);
        auto r = m.runShortestPaths(g, src);
        out.verified = r.dist == expect;
        out.time = r.time;
        areaOverride = r.area;
        break;
      }
    }
    out.steps = m.steps();
    out.area = areaOverride ? areaOverride : m.area();
    return out.time;
}

} // namespace ot::workload

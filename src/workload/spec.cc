#include "workload/spec.hh"

#include <cassert>
#include <cctype>

#include "topo/machine.hh"
#include "topo/registry.hh"
#include "vlsi/bitmath.hh"

namespace ot::workload {

namespace {

/** Parse a non-negative decimal integer; false on junk or overflow. */
bool
parseUint(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        if (v > (~std::uint64_t{0} - d) / 10)
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

bool
modelFromString(const std::string &s, vlsi::DelayModel &out)
{
    if (s == "log")
        out = vlsi::DelayModel::Logarithmic;
    else if (s == "const")
        out = vlsi::DelayModel::Constant;
    else if (s == "linear")
        out = vlsi::DelayModel::Linear;
    else
        return false;
    return true;
}

/**
 * Cursor over a JSON text for the one document shape parseWorkloadJson
 * accepts.  All failures funnel through fail(), which records the byte
 * offset of the first error.
 */
struct JsonCursor
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    /** Peek the next non-whitespace character ('\0' at end). */
    char
    peek()
    {
        skipWs();
        return pos < text.size() ? text[pos] : '\0';
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                ++pos;
                if (pos >= text.size())
                    break;
            }
            out += text[pos++];
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseNumber(std::uint64_t &out)
    {
        skipWs();
        std::string digits;
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9')
            digits += text[pos++];
        if (!parseUint(digits, out))
            return fail("expected a non-negative integer");
        return true;
    }

    bool
    parseBool(bool &out)
    {
        skipWs();
        if (text.compare(pos, 4, "true") == 0) {
            out = true;
            pos += 4;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            out = false;
            pos += 5;
            return true;
        }
        return fail("expected true or false");
    }
};

/** One instance object: '{' ("key": value)* '}'. */
bool
parseInstanceObject(JsonCursor &cur, InstanceSpec &out)
{
    if (!cur.consume('{'))
        return false;
    bool first = true;
    while (cur.peek() != '}') {
        if (!first && !cur.consume(','))
            return false;
        first = false;
        std::string key;
        if (!cur.parseString(key) || !cur.consume(':'))
            return false;
        if (key == "algo") {
            std::string v;
            if (!cur.parseString(v))
                return false;
            if (!topo::algoFromString(v, out.algo))
                return cur.fail("unknown algo '" + v + "'");
        } else if (key == "net") {
            std::string v;
            if (!cur.parseString(v))
                return false;
            if (!topo::isNetName(v))
                return cur.fail("unknown net '" + v + "'");
            out.net = v;
        } else if (key == "model") {
            std::string v;
            if (!cur.parseString(v))
                return false;
            if (!modelFromString(v, out.model))
                return cur.fail("unknown model '" + v + "'");
        } else if (key == "n") {
            std::uint64_t v = 0;
            if (!cur.parseNumber(v))
                return false;
            out.n = static_cast<std::size_t>(v);
        } else if (key == "seed") {
            if (!cur.parseNumber(out.seed))
                return false;
        } else if (key == "scaled") {
            if (!cur.parseBool(out.scaled))
                return false;
        } else {
            return cur.fail("unknown instance key '" + key + "'");
        }
    }
    return cur.consume('}');
}

} // namespace

void
validate(const WorkloadSpec &spec)
{
    assert(!spec.instances.empty() && "workload: empty batch");
    for (const InstanceSpec &inst : spec.instances) {
        assert(inst.n >= 2 && inst.n <= (std::size_t{1} << 14) &&
               "workload: instance size out of range [2, 16384]");
        assert(vlsi::isPow2(inst.n) &&
               "workload: instance size must be a power of two");
        assert(topo::isNetName(inst.net) &&
               "workload: unknown net name");
        (void)inst;
    }
}

std::string
describeInvalid(const WorkloadSpec &spec)
{
    if (spec.instances.empty())
        return "workload: empty batch";
    for (std::size_t i = 0; i < spec.instances.size(); ++i) {
        const InstanceSpec &inst = spec.instances[i];
        if (inst.n < 2 || inst.n > (std::size_t{1} << 14))
            return "instance " + std::to_string(i) +
                   ": size out of range [2, 16384]";
        if (!vlsi::isPow2(inst.n))
            return "instance " + std::to_string(i) + ": size " +
                   std::to_string(inst.n) + " is not a power of two";
        if (!topo::isNetName(inst.net))
            return "instance " + std::to_string(i) + ": unknown net '" +
                   inst.net + "'";
    }
    return "";
}

bool
parseInstance(const std::string &token, InstanceSpec &out, std::string &err)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : token) {
        if (c == ':') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);

    if (parts.size() < 4) {
        err = "expected algo:net:n:model[:scaled][:seed=K], got '" + token +
              "'";
        return false;
    }
    InstanceSpec inst;
    if (!topo::algoFromString(parts[0], inst.algo)) {
        err = "unknown algo '" + parts[0] +
              "' (sort|matmul|boolmm|cc|mst|sssp)";
        return false;
    }
    if (!topo::isNetName(parts[1])) {
        err = "unknown net '" + parts[1] + "' (" +
              topo::netNamesSummary() + ")";
        return false;
    }
    inst.net = parts[1];
    std::uint64_t n = 0;
    if (!parseUint(parts[2], n)) {
        err = "bad instance size '" + parts[2] + "'";
        return false;
    }
    inst.n = static_cast<std::size_t>(n);
    if (!modelFromString(parts[3], inst.model)) {
        err = "unknown model '" + parts[3] + "' (log|const|linear)";
        return false;
    }
    for (std::size_t i = 4; i < parts.size(); ++i) {
        if (parts[i] == "scaled") {
            inst.scaled = true;
        } else if (parts[i].rfind("seed=", 0) == 0) {
            if (!parseUint(parts[i].substr(5), inst.seed)) {
                err = "bad seed in '" + parts[i] + "'";
                return false;
            }
        } else {
            err = "unknown instance option '" + parts[i] + "'";
            return false;
        }
    }
    out = inst;
    return true;
}

std::string
toToken(const InstanceSpec &inst)
{
    std::string out = toString(inst.algo) + ":" + inst.net + ":" +
                      std::to_string(inst.n) + ":" +
                      shortName(inst.model);
    if (inst.scaled)
        out += ":scaled";
    if (inst.seed != 1)
        out += ":seed=" + std::to_string(inst.seed);
    return out;
}

bool
parseWorkloadJson(const std::string &text, WorkloadSpec &out,
                  std::string &err)
{
    JsonCursor cur{text, 0, ""};
    WorkloadSpec spec;

    bool ok = [&] {
        if (!cur.consume('{'))
            return false;
        std::string key;
        if (!cur.parseString(key))
            return false;
        if (key != "instances")
            return cur.fail("expected key \"instances\"");
        if (!cur.consume(':') || !cur.consume('['))
            return false;
        while (cur.peek() != ']') {
            if (!spec.instances.empty() && !cur.consume(','))
                return false;
            InstanceSpec inst;
            if (!parseInstanceObject(cur, inst))
                return false;
            spec.instances.push_back(inst);
        }
        if (!cur.consume(']') || !cur.consume('}'))
            return false;
        cur.skipWs();
        if (cur.pos != text.size())
            return cur.fail("trailing garbage");
        return true;
    }();

    if (!ok) {
        err = cur.err.empty() ? "malformed workload JSON" : cur.err;
        return false;
    }
    out = std::move(spec);
    return true;
}

std::string
toJson(const WorkloadSpec &spec)
{
    std::string out = "{\"instances\": [";
    for (std::size_t i = 0; i < spec.instances.size(); ++i) {
        const InstanceSpec &inst = spec.instances[i];
        if (i)
            out += ",";
        out += "\n  {\"algo\": \"" + toString(inst.algo) + "\"";
        out += ", \"net\": \"" + inst.net + "\"";
        out += ", \"n\": " + std::to_string(inst.n);
        out += ", \"model\": \"" + shortName(inst.model) + "\"";
        out += std::string(", \"scaled\": ") +
               (inst.scaled ? "true" : "false");
        out += ", \"seed\": " + std::to_string(inst.seed) + "}";
    }
    out += "\n]}\n";
    return out;
}

WorkloadSpec
demoWorkload()
{
    // The acceptance mix: both machine families, sizes {16, 32}, delay
    // models {log, const}, all five algorithms, and three repeated
    // shapes (same algo/net/n/model, different seed) so the cache hits.
    using M = vlsi::DelayModel;
    WorkloadSpec spec;
    auto add = [&](Algo a, const char *net, std::size_t n, M m,
                   std::uint64_t seed) {
        spec.instances.push_back({a, net, n, m, false, seed});
    };
    add(Algo::Sort, "otn", 32, M::Logarithmic, 1);
    add(Algo::Sort, "otn", 32, M::Logarithmic, 2);
    add(Algo::Sort, "otc", 32, M::Logarithmic, 3);
    add(Algo::Sort, "otc", 32, M::Logarithmic, 4);
    add(Algo::MatMul, "otn", 16, M::Logarithmic, 5);
    add(Algo::MatMul, "otc", 16, M::Logarithmic, 6);
    add(Algo::BoolMatMul, "otn", 16, M::Constant, 7);
    add(Algo::BoolMatMul, "otc", 16, M::Constant, 8);
    add(Algo::ConnectedComponents, "otn", 16, M::Logarithmic, 9);
    add(Algo::ConnectedComponents, "otn", 16, M::Logarithmic, 10);
    add(Algo::Mst, "otn", 16, M::Constant, 11);
    add(Algo::Mst, "otc", 16, M::Constant, 12);
    return spec;
}

} // namespace ot::workload

#include "trace/analysis.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "trace/export.hh"

namespace ot::trace {

Summary
analyze(const Tracer &tracer)
{
    Summary s;
    s.droppedEvents = tracer.dropped();

    // The phase stack, rebuilt from the begin/end events so charges can
    // be attributed to their innermost phase, and the critical chain:
    // one segment per maximal run of charges under the same innermost
    // phase.
    std::vector<std::string> stack;
    auto innermost = [&]() -> const std::string & {
        static const std::string unphased;
        return stack.empty() ? unphased : stack.back();
    };
    bool segment_open = false;
    auto extend_chain = [&](ModelTime start, ModelTime dur) {
        const std::string &phase = innermost();
        if (segment_open && s.criticalPath.back().phase == phase) {
            PhaseSegment &seg = s.criticalPath.back();
            seg.end = start + dur;
            seg.charged += dur;
        } else {
            s.criticalPath.push_back({phase, start, start + dur, dur});
            segment_open = true;
        }
    };

    for (const Event &e : tracer.events()) {
        switch (e.kind) {
        case EventKind::PhaseBegin:
            stack.push_back(e.phase);
            segment_open = false;
            break;
        case EventKind::PhaseEnd:
            if (!stack.empty())
                stack.pop_back();
            segment_open = false;
            break;
        case EventKind::Charge:
            s.total += e.dur;
            ++s.steps;
            s.perPhase[e.phase] += e.dur;
            extend_chain(e.start, e.dur);
            break;
        case EventKind::Span: {
            PrimitiveStat &p = s.perPrimitive[e.name];
            if (!e.charged) {
                ++p.unchargedCount;
                break;
            }
            ++p.count;
            p.time += e.dur;
            p.words += e.words;
            s.rootWords += e.words;
            if (e.axis != TraceAxis::None && e.tree >= 0) {
                TreeStat &t = s.perTree[{e.axis, e.tree}];
                ++t.count;
                t.time += e.dur;
                t.words += e.words;
            }
            if (e.levels)
                s.perLevel[e.levels] += e.dur;
            break;
        }
        }
    }
    return s;
}

namespace {

std::string
treeLabel(const std::pair<TraceAxis, std::int64_t> &key)
{
    std::ostringstream os;
    os << (key.first == TraceAxis::Row ? "row-tree-" : "col-tree-")
       << key.second;
    return os.str();
}

double
pct(ModelTime part, ModelTime total)
{
    return total ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace

void
Summary::writeText(std::ostream &os) const
{
    os << "trace summary: total model time " << total << " over " << steps
       << " clock ticks";
    if (droppedEvents)
        os << " (" << droppedEvents << " events dropped)";
    os << "\n";

    os << "per-phase model time:\n";
    for (const auto &[phase, t] : perPhase)
        os << "  " << std::left << std::setw(28)
           << (phase.empty() ? "(unphased)" : phase) << std::right
           << std::setw(14) << t << "  " << std::fixed
           << std::setprecision(1) << pct(t, total) << "%\n"
           << std::defaultfloat;

    os << "per-primitive charged time:\n";
    for (const auto &[name, p] : perPrimitive) {
        os << "  " << std::left << std::setw(28) << name << std::right
           << std::setw(14) << p.time << "  x" << p.count;
        if (p.unchargedCount)
            os << "  (+" << p.unchargedCount << " pipelined)";
        os << "\n";
    }

    if (!perLevel.empty()) {
        os << "per-tree-level charged time:\n";
        for (const auto &[levels, t] : perLevel)
            os << "  " << levels << "-level trees" << std::setw(14) << t
               << "\n";
    }

    os << "root bandwidth: " << rootWords << " words / " << total
       << " time = " << std::scientific << std::setprecision(3)
       << rootBandwidth() << " words per unit\n"
       << std::defaultfloat;

    // The busiest trees only; a full per-tree dump is in the JSON.
    std::vector<std::pair<std::pair<TraceAxis, std::int64_t>, TreeStat>>
        trees(perTree.begin(), perTree.end());
    std::sort(trees.begin(), trees.end(), [](const auto &a, const auto &b) {
        return a.second.time > b.second.time;
    });
    if (!trees.empty()) {
        os << "busiest trees:\n";
        for (std::size_t i = 0; i < std::min<std::size_t>(5, trees.size());
             ++i)
            os << "  " << std::left << std::setw(28)
               << treeLabel(trees[i].first) << std::right << std::setw(14)
               << trees[i].second.time << "  x" << trees[i].second.count
               << "\n";
    }

    os << "critical phase chain:\n";
    for (const PhaseSegment &seg : criticalPath)
        os << "  [" << seg.begin << ", " << seg.end << "] "
           << (seg.phase.empty() ? "(unphased)" : seg.phase) << " ("
           << seg.charged << " charged, " << std::fixed
           << std::setprecision(1) << pct(seg.charged, total) << "%)\n"
           << std::defaultfloat;
}

std::string
Summary::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"totalModelTime\": " << total << ",\n  \"steps\": " << steps
       << ",\n  \"rootWords\": " << rootWords
       << ",\n  \"rootBandwidth\": " << std::scientific
       << std::setprecision(9) << rootBandwidth() << std::defaultfloat
       << ",\n  \"droppedEvents\": " << droppedEvents;

    os << ",\n  \"perPhase\": {";
    bool first = true;
    for (const auto &[phase, t] : perPhase) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(phase)
           << "\": " << t;
        first = false;
    }
    os << "\n  }";

    os << ",\n  \"perPrimitive\": {";
    first = true;
    for (const auto &[name, p] : perPrimitive) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << p.count << ", \"time\": " << p.time
           << ", \"uncharged\": " << p.unchargedCount
           << ", \"words\": " << p.words << "}";
        first = false;
    }
    os << "\n  }";

    os << ",\n  \"perTree\": {";
    first = true;
    for (const auto &[key, t] : perTree) {
        os << (first ? "" : ",") << "\n    \"" << treeLabel(key)
           << "\": {\"count\": " << t.count << ", \"time\": " << t.time
           << ", \"words\": " << t.words << "}";
        first = false;
    }
    os << "\n  }";

    os << ",\n  \"perLevel\": {";
    first = true;
    for (const auto &[levels, t] : perLevel) {
        os << (first ? "" : ",") << "\n    \"" << levels << "\": " << t;
        first = false;
    }
    os << "\n  }";

    os << ",\n  \"criticalPath\": [";
    first = true;
    for (const PhaseSegment &seg : criticalPath) {
        os << (first ? "" : ",") << "\n    {\"phase\": \""
           << jsonEscape(seg.phase) << "\", \"begin\": " << seg.begin
           << ", \"end\": " << seg.end << ", \"charged\": " << seg.charged
           << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace ot::trace

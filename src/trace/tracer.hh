/**
 * @file
 * Model-time event tracing for the network simulators.
 *
 * The TimeAccountant and StatSet report end-of-run totals; the Tracer
 * records *where inside a run* the model time went, as a stream of
 * structured events stamped in model time:
 *
 *  - Span    — one network primitive (a ROOTTOLEAF, a CYCLETOROOT, a
 *              base step), with its tree address, word count and
 *              charged duration.  Spans from different iterations of
 *              one pardo overlap in model time — that *is* the
 *              parallelism the paper's max-of-chains rule expresses.
 *  - Charge  — one TimeAccountant::advance, i.e. one actual tick of
 *              the machine clock, tagged with the innermost phase.
 *              The Charge stream is the authoritative accounting
 *              track: its durations sum exactly to now().
 *  - PhaseBegin / PhaseEnd — the TimeAccountant phase stack.
 *
 * Determinism under OT_HOST_THREADS: pool lanes record into private
 * LaneLog buffers (no locks, no atomics); sim::ChainEngine merges
 * them in lane order after the join.  Lanes own contiguous iteration
 * blocks in index order, so the concatenation equals the sequential
 * recording order and the merged stream is bit-identical for every
 * host-thread count (test_trace.cc asserts this).
 *
 * Overhead: with no tracer attached the hooks are one pointer test;
 * compiled out entirely when OT_TRACE is not defined (CMake option
 * ORTHOTREE_TRACE).  The event buffer is bounded: once `capacity()`
 * events are held, further events are counted in `dropped()` and
 * discarded — earlier events are never overwritten, so long sweeps
 * cannot exhaust memory and a truncated trace is still a valid
 * prefix.  The bound is applied to the merged stream (lanes cap at
 * the capacity remaining when their pardo started), which keeps even
 * the *truncation point* thread-count-independent.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vlsi/delay.hh"

namespace ot::trace {

using vlsi::ModelTime;

/** What one trace event records. */
enum class EventKind : std::uint8_t {
    Span,       ///< a network primitive with a duration
    Charge,     ///< one TimeAccountant::advance (clock tick)
    PhaseBegin, ///< TimeAccountant::beginPhase
    PhaseEnd,   ///< TimeAccountant::endPhase
};

/** Tree axis of a span, or None for base / whole-machine operations. */
enum class TraceAxis : std::uint8_t { Row = 0, Col = 1, None = 2 };

/**
 * One structured trace event.  `cat` and `name` are static strings
 * (the instrumentation sites pass literals); `phase` carries the
 * dynamic phase name for Charge/PhaseBegin/PhaseEnd events.
 */
struct Event
{
    EventKind kind = EventKind::Span;
    TraceAxis axis = TraceAxis::None;
    bool charged = true;   ///< false inside runUncharged (pipedo) blocks
    ModelTime start = 0;   ///< model time the event begins
    ModelTime dur = 0;     ///< charged model time (0 for instants)
    const char *cat = "";  ///< subsystem: "otn", "otc", "sim"
    const char *name = ""; ///< primitive name; "" for phase/charge events
    std::string phase;     ///< phase name (Charge/PhaseBegin/PhaseEnd)
    std::int64_t tree = -1;    ///< tree index on `axis`, -1 if n/a
    std::uint32_t levels = 0;  ///< tree height the op traverses
    std::uint64_t words = 0;   ///< words crossing the tree root port
};

/** Field-wise equality (names compared by content, not address). */
bool eventsEqual(const Event &a, const Event &b);

/**
 * Private, lock-free event buffer for one ChainEngine pool lane.
 * Bounded by the capacity the owning Tracer had left when the pardo
 * was dispatched; `attempts` counts every record so the merge can
 * account drops exactly.
 */
struct LaneLog
{
    std::vector<Event> events;
    std::uint64_t attempts = 0;
    std::size_t cap = 0;

    void
    record(Event &&e)
    {
        ++attempts;
        if (events.size() < cap)
            events.push_back(std::move(e));
    }
};

/**
 * Collects the event stream of one run.
 *
 * Single-owner: record() may only be called from the thread driving
 * the simulation (the ChainEngine routes lane-side spans through
 * LaneLogs instead).  Off by default — construct, setEnabled(true),
 * attach with net.setTracer(&tracer).
 */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

    explicit Tracer(std::size_t capacity = kDefaultCapacity)
        : _capacity(capacity)
    {
    }

    bool enabled() const { return _enabled; }
    void setEnabled(bool on) { _enabled = on; }

    std::size_t capacity() const { return _capacity; }

    /** Events the buffer can still take before dropping. */
    std::size_t
    remainingCapacity() const
    {
        return _capacity - _events.size();
    }

    /** Events discarded because the buffer was full. */
    std::uint64_t dropped() const { return _dropped; }

    const std::vector<Event> &events() const { return _events; }

    /** Forget all recorded events and the drop count. */
    void
    clear()
    {
        _events.clear();
        _dropped = 0;
    }

    /** Append one event (bounded; drops and counts when full). */
    void
    record(Event &&e)
    {
        if (_events.size() < _capacity)
            _events.push_back(std::move(e));
        else
            ++_dropped;
    }

    /** One clock tick of duration `dur` starting at `start`. */
    void
    recordCharge(ModelTime start, ModelTime dur, const std::string &phase)
    {
        Event e;
        e.kind = EventKind::Charge;
        e.cat = "sim";
        e.start = start;
        e.dur = dur;
        e.phase = phase;
        record(std::move(e));
    }

    /** Phase-stack push/pop at model time `t`. */
    void
    recordPhase(EventKind kind, ModelTime t, const std::string &phase)
    {
        Event e;
        e.kind = kind;
        e.cat = "sim";
        e.start = t;
        e.phase = phase;
        record(std::move(e));
    }

    /**
     * Fold one lane's log into the stream (called by the ChainEngine
     * after the pool join, in lane-index order).  Keeps the lane's
     * events up to the global capacity and accounts every recording
     * attempt beyond that as dropped.
     */
    void
    mergeLane(LaneLog &log)
    {
        std::uint64_t kept = 0;
        for (Event &e : log.events) {
            if (_events.size() >= _capacity)
                break;
            _events.push_back(std::move(e));
            ++kept;
        }
        _dropped += log.attempts - kept;
        log.events.clear();
        log.attempts = 0;
    }

  private:
    bool _enabled = false;
    std::size_t _capacity;
    std::uint64_t _dropped = 0;
    std::vector<Event> _events;
};

} // namespace ot::trace

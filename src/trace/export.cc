#include "trace/export.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace ot::trace {

namespace {

constexpr std::uint64_t kTidPhases = 1;
constexpr std::uint64_t kTidAccounting = 2;
constexpr std::uint64_t kTidBase = 3;
constexpr std::uint64_t kTidTrees = 16;

std::uint64_t
spanTid(const Event &e)
{
    if (e.axis == TraceAxis::None || e.tree < 0)
        return kTidBase;
    return kTidTrees + 2 * static_cast<std::uint64_t>(e.tree) +
           (e.axis == TraceAxis::Col ? 1 : 0);
}

std::string
trackName(const Event &e)
{
    if (e.axis == TraceAxis::None || e.tree < 0)
        return "base";
    std::ostringstream os;
    os << (e.axis == TraceAxis::Row ? "row-tree-" : "col-tree-") << e.tree;
    return os.str();
}

void
writeMetaEvent(std::ostream &os, bool &first, std::uint64_t tid,
               const std::string &name)
{
    os << (first ? "" : ",\n") << "  {\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << jsonEscape(name) << "\"}}";
    first = false;
}

void
writeCompleteEvent(std::ostream &os, bool &first, std::uint64_t tid,
                   const std::string &name, const char *cat, ModelTime ts,
                   ModelTime dur, const std::string &args_json)
{
    os << (first ? "" : ",\n") << "  {\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"" << jsonEscape(name) << "\",\"cat\":\"" << cat
       << "\",\"ts\":" << ts << ",\"dur\":" << dur;
    if (!args_json.empty())
        os << ",\"args\":" << args_json;
    os << "}";
    first = false;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeChromeTrace(std::ostream &os, const Tracer &tracer,
                 const std::string &stats_json)
{
    const auto &events = tracer.events();

    // Pair PhaseBegin/PhaseEnd into complete spans; an unbalanced
    // Begin closes at the last timestamp seen so a truncated trace
    // still renders.
    ModelTime last_ts = 0;
    for (const Event &e : events)
        last_ts = std::max(last_ts, e.start + e.dur);

    struct OpenPhase
    {
        std::string name;
        ModelTime begin;
    };

    os << "{\n\"traceEvents\": [\n";
    bool first = true;
    writeMetaEvent(os, first, kTidPhases, "phases");
    writeMetaEvent(os, first, kTidAccounting, "accounting");

    std::map<std::uint64_t, std::string> tracks;
    std::vector<OpenPhase> open;
    for (const Event &e : events) {
        switch (e.kind) {
        case EventKind::PhaseBegin:
            open.push_back({e.phase, e.start});
            break;
        case EventKind::PhaseEnd: {
            if (open.empty())
                break;
            OpenPhase p = std::move(open.back());
            open.pop_back();
            writeCompleteEvent(os, first, kTidPhases, p.name, "phase",
                               p.begin, e.start - p.begin, "");
            break;
        }
        case EventKind::Charge:
            writeCompleteEvent(os, first, kTidAccounting,
                               e.phase.empty() ? "(unphased)" : e.phase,
                               "charge", e.start, e.dur, "");
            break;
        case EventKind::Span: {
            std::uint64_t tid = spanTid(e);
            tracks.emplace(tid, trackName(e));
            std::ostringstream args;
            args << "{\"words\":" << e.words << ",\"levels\":" << e.levels
                 << ",\"charged\":" << (e.charged ? "true" : "false") << "}";
            writeCompleteEvent(os, first, tid, e.name, e.cat, e.start, e.dur,
                               args.str());
            break;
        }
        }
    }
    while (!open.empty()) {
        OpenPhase p = std::move(open.back());
        open.pop_back();
        writeCompleteEvent(os, first, kTidPhases, p.name, "phase", p.begin,
                           last_ts - p.begin, "");
    }
    for (const auto &[tid, name] : tracks)
        writeMetaEvent(os, first, tid, name);

    os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\n"
       << "  \"modelTimeEnd\": " << last_ts << ",\n"
       << "  \"events\": " << events.size() << ",\n"
       << "  \"droppedEvents\": " << tracer.dropped();
    if (!stats_json.empty())
        os << ",\n  \"stats\": " << stats_json;
    os << "\n}\n}\n";
}

std::string
toChromeTraceJson(const Tracer &tracer, const std::string &stats_json)
{
    std::ostringstream os;
    writeChromeTrace(os, tracer, stats_json);
    return os.str();
}

} // namespace ot::trace

#include "trace/tracer.hh"

#include <cstring>

namespace ot::trace {

bool
eventsEqual(const Event &a, const Event &b)
{
    return a.kind == b.kind && a.axis == b.axis && a.charged == b.charged &&
           a.start == b.start && a.dur == b.dur &&
           std::strcmp(a.cat, b.cat) == 0 &&
           std::strcmp(a.name, b.name) == 0 && a.phase == b.phase &&
           a.tree == b.tree && a.levels == b.levels && a.words == b.words;
}

} // namespace ot::trace

/**
 * @file
 * Chrome trace-event (Perfetto) export of a Tracer's stream.
 *
 * The emitted JSON is the classic `{"traceEvents": [...]}` format that
 * ui.perfetto.dev and chrome://tracing load directly.  Model time maps
 * to the timestamp axis one-to-one (one model-time unit = one "us" in
 * the viewer; the absolute unit is abstract anyway).
 *
 * Track layout (all under one process, "orthotree model"):
 *   tid 1            "phases"      — the TimeAccountant phase stack,
 *                                    as complete spans
 *   tid 2            "accounting"  — every clock tick (Charge event),
 *                                    named by its innermost phase
 *   tid 3            "base"        — spans with no tree address
 *                                    (baseOp, loadBase, circulate)
 *   tid 16 + 2t + a  one track per tree (axis a, tree index t), so a
 *                    pardo over trees renders as overlapping rows
 *
 * Spans recorded inside runUncharged (pipedo) blocks carry
 * "charged": false in their args.
 */

#pragma once

#include <ostream>
#include <string>

#include "trace/tracer.hh"

namespace ot::trace {

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Write the Perfetto-loadable trace JSON.  `stats_json`, if nonempty,
 * must be a complete JSON value (e.g. sim::StatSet::toJson()) and is
 * embedded under otherData.stats so counters ride along with the
 * events.
 */
void writeChromeTrace(std::ostream &os, const Tracer &tracer,
                      const std::string &stats_json = "");

/** Same, as a string. */
std::string toChromeTraceJson(const Tracer &tracer,
                              const std::string &stats_json = "");

} // namespace ot::trace

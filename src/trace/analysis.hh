/**
 * @file
 * In-process analysis of a Tracer's event stream.
 *
 * Computes the breakdowns the paper's tables are made of — per-phase
 * and per-tree model time, per-primitive counts, root bandwidth — plus
 * the critical phase chain: the chronological sequence of innermost
 * phases that tiles the whole timeline.  Because the machine clock is
 * a single line (pardo parallelism is already folded into each charge
 * by the max-of-chains rule), that chain *is* the critical path; its
 * heaviest links are where an optimization must land to move total
 * model time.
 *
 * The per-phase totals come from the Charge events, so they sum
 * exactly to TimeAccountant::now() and match phaseTimes() — the span
 * stream is a view, the charge stream is the accounting of record.
 */

#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "trace/tracer.hh"

namespace ot::trace {

/** Aggregate over one primitive kind (e.g. "otn.rootToLeaf"). */
struct PrimitiveStat
{
    std::uint64_t count = 0;          ///< charged executions
    ModelTime time = 0;               ///< summed charged span durations
    std::uint64_t unchargedCount = 0; ///< executions inside pipedo blocks
    std::uint64_t words = 0;          ///< root-port words (charged spans)
};

/** Aggregate over one tree (axis + index). */
struct TreeStat
{
    std::uint64_t count = 0;
    ModelTime time = 0;
    std::uint64_t words = 0;
};

/** One link of the critical phase chain. */
struct PhaseSegment
{
    std::string phase;    ///< innermost phase ("" = unphased)
    ModelTime begin = 0;  ///< model time the segment starts
    ModelTime end = 0;    ///< model time the segment ends
    ModelTime charged = 0;///< clock ticks charged within the segment
};

/** The analyzer's result. */
struct Summary
{
    ModelTime total = 0;       ///< sum of all charges == now()
    std::uint64_t steps = 0;   ///< number of charges (clock ticks)
    std::uint64_t rootWords = 0; ///< words through tree root ports
    std::uint64_t droppedEvents = 0;

    /** Charged model time by innermost phase ("" = unphased). */
    std::map<std::string, ModelTime> perPhase;

    /** Charged span time/count by primitive name. */
    std::map<std::string, PrimitiveStat> perPrimitive;

    /** Charged span time by (axis, tree index). */
    std::map<std::pair<TraceAxis, std::int64_t>, TreeStat> perTree;

    /** Charged span time by tree height (levels traversed). */
    std::map<std::uint32_t, ModelTime> perLevel;

    /** Chronological chain of innermost phases covering the run. */
    std::vector<PhaseSegment> criticalPath;

    /** Root-port words per unit model time. */
    double
    rootBandwidth() const
    {
        return total ? static_cast<double>(rootWords) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Human-readable report. */
    void writeText(std::ostream &os) const;

    /** The same report as a JSON object. */
    std::string toJson() const;
};

/** Digest the tracer's event stream. */
Summary analyze(const Tracer &tracer);

} // namespace ot::trace

/**
 * @file
 * The scenario layer's PRNG: seeded splitmix64 streams for arrival
 * processes.
 *
 * Arrival generation needs many decorrelated random sequences per
 * scenario (inter-arrival gaps, burst dwells, client picks, mix
 * picks, per-arrival input seeds) that are (a) seeded from the .scn
 * spec, (b) independent of host threading, and (c) cheap.  StreamRng
 * wraps the same splitmix64 core as sim::Rng but adds an explicit
 * stream id, so a generator can split one spec seed into any number
 * of independent sequences without coordination.
 *
 * This header is the determinism-scope exemption for the scenario
 * layer: otcheck bans raw `splitmix64` calls everywhere in the
 * determinism scope (rules.cc), and the two call sites below carry
 * the only justified allows.  Everything else draws through
 * StreamRng, whose output is a pure function of (seed, stream).
 */

#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "vlsi/delay.hh"

namespace ot::scenario {

/**
 * One splitmix64 step: advance `state` and return the mixed output
 * (Steele, Lea & Flood; the same constants as sim::Rng).  Call sites
 * are confined to StreamRng — otcheck's determinism rule flags any
 * other.
 */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * A seeded, stream-indexed splitmix64 generator.  Streams with the
 * same seed but different ids are offset by a multiplier that is
 * *not* the splitmix increment (otherwise stream k would be stream 0
 * shifted by k steps), plus one warm-up step to decorrelate nearby
 * (seed, stream) pairs.
 */
class StreamRng
{
  public:
    explicit StreamRng(std::uint64_t seed, std::uint64_t stream = 0)
        : _state(seed ^ (0x94d049bb133111ebULL * (stream + 1)))
    {
        // otcheck:allow(determinism): the scenario layer owns the
        // seeded arrival PRNG; the warm-up draw is part of the
        // (seed, stream) -> sequence function
        (void)splitmix64(_state);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        // otcheck:allow(determinism): sole draw site of the scenario
        // PRNG — every stream is seeded from the .scn spec
        return splitmix64(_state);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        std::uint64_t span = hi - lo + 1;
        if (span == 0) // full 64-bit range
            return next();
        return lo + next() % span;
    }

    /** Uniform double in (0, 1] — never 0, so std::log is safe. */
    double
    unitOpen()
    {
        return (static_cast<double>(next() >> 11) + 1.0) *
               (1.0 / 9007199254740992.0);
    }

    /** Exponential variate with the given mean, as a double. */
    double
    expReal(double mean)
    {
        assert(mean > 0.0);
        return -mean * std::log(unitOpen());
    }

    /**
     * Exponential inter-arrival gap in model time: rounded to the
     * nearest tick and floored at 1 so time always advances.
     */
    vlsi::ModelTime
    exponential(vlsi::ModelTime mean)
    {
        double g = expReal(static_cast<double>(mean));
        if (g < 1.0)
            return 1;
        return static_cast<vlsi::ModelTime>(g + 0.5);
    }

  private:
    std::uint64_t _state;
};

} // namespace ot::scenario

#include "scenario/engine.hh"

#include <algorithm>
#include <cassert>

#include "scenario/scheduler.hh"

namespace ot::scenario {

namespace {

constexpr ModelTime kNever = ~ModelTime{0};

/** Fill a SojournStats from unsorted samples (sorts in place). */
SojournStats
summarize(std::vector<ModelTime> &samples)
{
    SojournStats s;
    s.count = samples.size();
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.p50 = percentileNearestRank(samples, 50);
    s.p95 = percentileNearestRank(samples, 95);
    s.p99 = percentileNearestRank(samples, 99);
    ModelTime sum = 0;
    for (ModelTime v : samples)
        sum += v;
    s.mean = sum / samples.size();
    s.max = samples.back();
    return s;
}

std::string
sojournJson(const SojournStats &s)
{
    std::string out = "{\"count\": " + std::to_string(s.count);
    out += ", \"p50\": " + std::to_string(s.p50);
    out += ", \"p95\": " + std::to_string(s.p95);
    out += ", \"p99\": " + std::to_string(s.p99);
    out += ", \"mean\": " + std::to_string(s.mean);
    out += ", \"max\": " + std::to_string(s.max) + "}";
    return out;
}

/** "87.3%" from integer permille (keeps reports float-free). */
std::string
permilleText(unsigned permille)
{
    return std::to_string(permille / 10) + "." +
           std::to_string(permille % 10) + "%";
}

void
writeSojournText(std::ostream &os, const SojournStats &s)
{
    os << "p50 " << s.p50 << "  p95 " << s.p95 << "  p99 " << s.p99
       << "  mean " << s.mean << "  max " << s.max;
}

} // namespace

ModelTime
percentileNearestRank(const std::vector<ModelTime> &sorted,
                      unsigned pct)
{
    assert(pct >= 1 && pct <= 100);
    if (sorted.empty())
        return 0;
    // ceil(pct/100 * n), 1-based; always in [1, n].
    std::size_t rank = (pct * sorted.size() + 99) / 100;
    return sorted[rank - 1];
}

std::string
ScenarioReport::toJson() const
{
    std::string out = "{\"scenario\": \"" + scenario + "\"";
    out += ", \"scheduler\": \"" + toString(scheduler) + "\"";
    out += ", \"workers\": " + std::to_string(workers) + ",\n";
    out += " \"arrivals\": " + std::to_string(arrivals);
    out += ", \"completed\": " + std::to_string(completed);
    out += ", \"dropped_queue\": " + std::to_string(droppedQueue);
    out += ", \"dropped_quota\": " + std::to_string(droppedQuota);
    out += ", \"deferred\": " + std::to_string(deferred) + ",\n";
    out += " \"horizon\": " + std::to_string(horizon);
    out += ", \"makespan\": " + std::to_string(makespan);
    out += ", \"total_service\": " + std::to_string(totalService);
    out += ", \"utilization_permille\": " +
           std::to_string(utilizationPermille) + ",\n";
    out += " \"sojourn\": " + sojournJson(sojourn) + ",\n";
    out += " \"clients\": [";
    for (std::size_t i = 0; i < clients.size(); ++i) {
        const ClientReport &c = clients[i];
        if (i)
            out += ",";
        out += "\n  {\"name\": \"" + c.name + "\"";
        out += ", \"arrivals\": " + std::to_string(c.arrivals);
        out += ", \"completed\": " + std::to_string(c.completed);
        out += ", \"dropped_queue\": " +
               std::to_string(c.droppedQueue);
        out += ", \"dropped_quota\": " +
               std::to_string(c.droppedQuota);
        out += ", \"deferred\": " + std::to_string(c.deferred);
        out += ", \"sojourn\": " + sojournJson(c.sojourn);
        out += ", \"slo\": " + std::to_string(c.sloTarget);
        out += ", \"slo_pct\": " + std::to_string(c.sloPct);
        out += ", \"slo_observed\": " + std::to_string(c.sloObserved);
        out += std::string(", \"slo_pass\": ") +
               (c.sloPass ? "true" : "false") + "}";
    }
    out += "\n ],\n";
    out += std::string(" \"slo_pass\": ") +
           (sloPass ? "true" : "false");
    out += std::string(", \"verified\": ") +
           (verified ? "true" : "false") + "}";
    return out;
}

void
ScenarioReport::writeText(std::ostream &os) const
{
    os << "scenario " << scenario << " [" << toString(scheduler)
       << "]: " << arrivals << " arrivals over " << horizon
       << " model time, " << workers << " worker(s)\n";
    os << "  completed " << completed << ", dropped "
       << droppedQueue + droppedQuota << " (queue " << droppedQueue
       << ", quota " << droppedQuota << "), deferred " << deferred
       << "\n";
    os << "  sojourn ";
    writeSojournText(os, sojourn);
    os << "\n";
    os << "  makespan " << makespan << ", service " << totalService
       << ", utilization " << permilleText(utilizationPermille)
       << "\n";
    for (const ClientReport &c : clients) {
        os << "  client " << c.name << ": " << c.arrivals
           << " arrivals, " << c.completed << " completed, sojourn ";
        writeSojournText(os, c.sojourn);
        if (c.sloTarget != 0)
            os << ", slo " << c.sloTarget << "@p" << c.sloPct
               << " observed " << c.sloObserved << " -> "
               << (c.sloPass ? "pass" : "FAIL");
        os << "\n";
    }
    os << "  slo " << (sloPass ? "pass" : "FAIL") << ", verified "
       << (verified ? "yes" : "NO") << "\n";
}

std::string
compareJson(const std::vector<ScenarioReport> &reports)
{
    std::string name = reports.empty() ? "" : reports[0].scenario;
    std::string out = "{\"scenario\": \"" + name +
                      "\", \"reports\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i)
            out += ",\n";
        out += reports[i].toJson();
    }
    out += "\n]}\n";
    return out;
}

ScenarioEngine::ScenarioEngine(unsigned host_threads)
    : _batch(host_threads)
{
}

void
ScenarioEngine::measure(const std::vector<Arrival> &arrivals)
{
    // Collect the not-yet-measured distinct instances in
    // first-appearance order (the batch order is part of the
    // deterministic contract).
    workload::WorkloadSpec missing;
    std::map<workload::InstanceSpec, bool> queued;
    for (const Arrival &arr : arrivals) {
        if (_serviceTime.count(arr.inst) || queued.count(arr.inst))
            continue;
        queued[arr.inst] = true;
        missing.instances.push_back(arr.inst);
    }
    if (missing.instances.empty())
        return;
    workload::BatchReport br = _batch.run(missing);
    for (const workload::InstanceReport &ir : br.instances) {
        _serviceTime[ir.spec] = ir.time;
        // The first measurement of a shape becomes its estimate.
        _estimate.emplace(workload::cacheKeyFor(ir.spec), ir.time);
    }
    _allVerified = _allVerified && br.allVerified();
}

ScenarioReport
ScenarioEngine::run(const ScenarioSpec &spec)
{
    return run(spec, spec.scheduler);
}

ScenarioReport
ScenarioEngine::run(const ScenarioSpec &spec, SchedulerKind scheduler)
{
    validate(spec);
    std::vector<Arrival> arrivals = generateArrivals(spec);
    measure(arrivals);

    ScenarioReport rep;
    rep.scenario = spec.name;
    rep.scheduler = scheduler;
    rep.workers = spec.workers;
    rep.horizon = spec.arrival.duration;
    rep.arrivals = arrivals.size();
    rep.verified = _allVerified;
    rep.clients.resize(spec.clients.size());
    for (std::size_t c = 0; c < spec.clients.size(); ++c) {
        rep.clients[c].name = spec.clients[c].name;
        rep.clients[c].sloTarget = spec.clients[c].slo;
        rep.clients[c].sloPct = spec.clients[c].sloPct;
    }

    // The job table, in arrival order.
    rep.jobs.resize(arrivals.size());
    std::vector<ModelTime> estimate(arrivals.size(), 0);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const Arrival &arr = arrivals[i];
        JobOutcome &jo = rep.jobs[i];
        jo.job = i;
        jo.client = arr.client;
        jo.arrive = arr.at;
        jo.service = _serviceTime.at(arr.inst);
        estimate[i] = _estimate.at(workload::cacheKeyFor(arr.inst));
    }

    // Event-driven queue walk.  Two event kinds interleave in model
    // time: arrivals (admission decisions) and starts (scheduling
    // decisions when a worker frees).  Arrivals win ties so a job
    // landing exactly when a worker frees is eligible immediately.
    std::vector<ModelTime> workerFree(spec.workers, 0);
    std::vector<QueueJob> queue;
    std::vector<QueueJob> backlog; // deferred, FIFO re-admission
    std::vector<ModelTime> served(spec.clients.size(), 0);
    std::vector<std::size_t> outstanding(spec.clients.size(), 0);
    // Started-but-uncounted completions, retired per arrival time.
    std::vector<std::pair<ModelTime, unsigned>> running;

    auto makeQueueJob = [&](std::size_t i) {
        const ClientConfig &c = spec.clients[rep.jobs[i].client];
        QueueJob q;
        q.job = i;
        q.arrive = rep.jobs[i].arrive;
        q.client = rep.jobs[i].client;
        q.estimate = estimate[i];
        q.deadline = c.slo == 0 ? kNever : q.arrive + c.slo;
        return q;
    };
    auto promote = [&] {
        while (!backlog.empty() &&
               (spec.queueCap == 0 || queue.size() < spec.queueCap)) {
            queue.push_back(backlog.front());
            backlog.erase(backlog.begin());
        }
    };

    std::size_t ai = 0;
    while (ai < rep.jobs.size() || !queue.empty() ||
           !backlog.empty()) {
        promote();
        // Earliest possible start of a queued job: the freest worker
        // (lowest index on ties), gated on the earliest queued
        // arrival.
        std::size_t w = 0;
        for (std::size_t i = 1; i < workerFree.size(); ++i)
            if (workerFree[i] < workerFree[w])
                w = i;
        ModelTime tStart = kNever;
        if (!queue.empty()) {
            ModelTime qArr = kNever;
            for (const QueueJob &q : queue)
                qArr = std::min(qArr, q.arrive);
            tStart = std::max(workerFree[w], qArr);
        }
        ModelTime tArr =
            ai < rep.jobs.size() ? rep.jobs[ai].arrive : kNever;

        if (ai < rep.jobs.size() && tArr <= tStart) {
            // Admission at tArr.  Retire completions first so the
            // quota sees the true outstanding count.
            for (std::size_t i = 0; i < running.size();) {
                if (running[i].first <= tArr) {
                    --outstanding[running[i].second];
                    running[i] = running.back();
                    running.pop_back();
                } else {
                    ++i;
                }
            }
            JobOutcome &jo = rep.jobs[ai];
            const ClientConfig &c = spec.clients[jo.client];
            if (c.quota != 0 && outstanding[jo.client] >= c.quota) {
                jo.droppedQuota = true;
            } else if (spec.queueCap != 0 &&
                       queue.size() >= spec.queueCap) {
                if (spec.shed == ShedPolicy::Drop) {
                    jo.droppedQueue = true;
                } else {
                    jo.deferred = true;
                    backlog.push_back(makeQueueJob(ai));
                    ++outstanding[jo.client];
                }
            } else {
                queue.push_back(makeQueueJob(ai));
                ++outstanding[jo.client];
            }
            ++ai;
            continue;
        }
        if (queue.empty())
            break; // backlog can never drain without queue space

        // Start one job on worker w at tStart.
        std::size_t pick = pickNext(scheduler, queue, served);
        QueueJob q = queue[pick];
        queue.erase(queue.begin() +
                    static_cast<std::ptrdiff_t>(pick));
        JobOutcome &jo = rep.jobs[q.job];
        jo.start = std::max(workerFree[w], q.arrive);
        jo.complete = jo.start + jo.service;
        jo.completed = true;
        workerFree[w] = jo.complete;
        served[q.client] += jo.service;
        running.push_back({jo.complete, q.client});
    }

    // Aggregate.
    std::vector<ModelTime> all;
    std::vector<std::vector<ModelTime>> perClient(
        spec.clients.size());
    for (const JobOutcome &jo : rep.jobs) {
        ClientReport &cr = rep.clients[jo.client];
        ++cr.arrivals;
        if (jo.deferred) {
            ++rep.deferred;
            ++cr.deferred;
        }
        if (jo.droppedQueue) {
            ++rep.droppedQueue;
            ++cr.droppedQueue;
        }
        if (jo.droppedQuota) {
            ++rep.droppedQuota;
            ++cr.droppedQuota;
        }
        if (!jo.completed)
            continue;
        ++rep.completed;
        ++cr.completed;
        rep.makespan = std::max(rep.makespan, jo.complete);
        rep.totalService += jo.service;
        all.push_back(jo.complete - jo.arrive);
        perClient[jo.client].push_back(jo.complete - jo.arrive);
    }
    rep.sojourn = summarize(all);
    if (rep.makespan != 0)
        rep.utilizationPermille = static_cast<unsigned>(
            rep.totalService * 1000 / (rep.makespan * rep.workers));
    for (std::size_t c = 0; c < rep.clients.size(); ++c) {
        ClientReport &cr = rep.clients[c];
        cr.sojourn = summarize(perClient[c]);
        if (cr.sloTarget != 0) {
            cr.sloObserved =
                percentileNearestRank(perClient[c], cr.sloPct);
            cr.sloPass = cr.sloObserved <= cr.sloTarget &&
                         cr.droppedQueue + cr.droppedQuota == 0;
        }
        rep.sloPass = rep.sloPass && cr.sloPass;
    }

    if (_tracer != nullptr) {
        // One span per completed job, in arrival order (the merge
        // key is deterministic data only).
        for (const JobOutcome &jo : rep.jobs) {
            if (!jo.completed)
                continue;
            trace::Event e;
            e.kind = trace::EventKind::Span;
            e.start = jo.start;
            e.dur = jo.service;
            e.cat = "scenario";
            e.name = "job";
            e.tree = static_cast<std::int64_t>(jo.job);
            e.words = jo.complete - jo.arrive;
            _tracer->record(std::move(e));
        }
    }
    return rep;
}

} // namespace ot::scenario

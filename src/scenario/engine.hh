/**
 * @file
 * The scenario engine: arrival stream -> scheduler -> machine farm,
 * with latency-SLO reporting, all in model time.
 *
 * Service times are *measured*, not assumed: every distinct
 * InstanceSpec in the arrival stream runs once through the
 * BatchEngine (verified against its sequential reference, memoized
 * across runs — so comparing schedulers re-measures nothing), and an
 * event-driven queueing simulation then replays the arrival sequence
 * against `workers` model servers under the selected policy.
 * Arrivals, service times and the queue walk are pure functions of
 * the spec, so reports are byte-identical at every OT_HOST_THREADS
 * (the PR 1 contract — the BatchEngine measurement underneath holds
 * it too).
 *
 * The SJF estimates deliberately come from the machine-shape cache
 * (the first measured time per NetworkCache key), not from per-job
 * oracle times: a serving system knows the machine shape of a
 * request, not its exact runtime.
 *
 * Admission control at each arrival: a client over its outstanding
 * quota is dropped; a full admission queue drops (ShedPolicy::Drop)
 * or parks the job in a backlog re-admitted as space frees
 * (ShedPolicy::Defer).  Sojourn time = completion - arrival, and the
 * report carries p50/p95/p99/mean/max overall and per client, plus
 * SLO pass/fail against each client's target percentile.
 */

#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "scenario/arrivals.hh"
#include "scenario/spec.hh"
#include "trace/tracer.hh"
#include "vlsi/delay.hh"
#include "workload/engine.hh"
#include "workload/network_cache.hh"
#include "workload/spec.hh"

namespace ot::scenario {

using vlsi::ModelTime;

/**
 * Nearest-rank percentile (ceil(pct/100 * n)-th smallest) over
 * ascending samples; 0 on an empty vector.  pct in [1, 100].
 */
ModelTime percentileNearestRank(const std::vector<ModelTime> &sorted,
                                unsigned pct);

/** Sojourn-time (arrival -> completion) summary. */
struct SojournStats
{
    std::size_t count = 0;
    ModelTime p50 = 0;
    ModelTime p95 = 0;
    ModelTime p99 = 0;
    /** Integer mean (floor); 0 when count is 0. */
    ModelTime mean = 0;
    ModelTime max = 0;
};

/** Per-client slice of a scenario run. */
struct ClientReport
{
    std::string name;
    std::size_t arrivals = 0;
    std::size_t completed = 0;
    std::size_t droppedQueue = 0;
    std::size_t droppedQuota = 0;
    std::size_t deferred = 0;
    SojournStats sojourn;
    /** The client's SLO target; 0 = none (sloPass vacuously true). */
    ModelTime sloTarget = 0;
    unsigned sloPct = 95;
    /** The observed sojourn percentile the target applies to. */
    ModelTime sloObserved = 0;
    /** observed <= target and nothing dropped (targets only). */
    bool sloPass = true;
};

/** Outcome of one job (arrival) in the queueing simulation. */
struct JobOutcome
{
    std::size_t job = 0;
    unsigned client = 0;
    ModelTime arrive = 0;
    ModelTime start = 0;
    ModelTime complete = 0;
    /** Measured model service time of the job's instance. */
    ModelTime service = 0;
    bool completed = false;
    bool deferred = false;
    bool droppedQueue = false;
    bool droppedQuota = false;
};

/** Aggregate + per-client + per-job outcomes of one scenario run. */
struct ScenarioReport
{
    std::string scenario;
    SchedulerKind scheduler = SchedulerKind::Fifo;
    unsigned workers = 1;
    /** The spec's arrival horizon (for rate math in consumers). */
    ModelTime horizon = 0;
    std::size_t arrivals = 0;
    std::size_t completed = 0;
    std::size_t droppedQueue = 0;
    std::size_t droppedQuota = 0;
    std::size_t deferred = 0;
    /** Last completion time; 0 when nothing completed. */
    ModelTime makespan = 0;
    /** Summed service time of completed jobs. */
    ModelTime totalService = 0;
    /** totalService * 1000 / (makespan * workers); 0 if no makespan. */
    unsigned utilizationPermille = 0;
    SojournStats sojourn;
    std::vector<ClientReport> clients;
    /** Per-job outcomes in arrival order (not serialized to JSON). */
    std::vector<JobOutcome> jobs;
    /** Every measured instance matched its sequential reference. */
    bool verified = true;
    /** Every client with a target passed it. */
    bool sloPass = true;

    /**
     * The report as JSON (jobs elided).  Only model-time- and
     * spec-derived integers and fixed strings — no host timing — so
     * the bytes are identical at every OT_HOST_THREADS.
     */
    std::string toJson() const;

    /** Human-readable summary (same data as toJson). */
    void writeText(std::ostream &os) const;
};

/**
 * One JSON document wrapping the reports of one scenario run under
 * several policies: {"scenario": ..., "reports": [...]}.
 */
std::string compareJson(const std::vector<ScenarioReport> &reports);

/** Runs scenarios; owns the BatchEngine and the measurement memo. */
class ScenarioEngine
{
  public:
    /**
     * @param host_threads Passed to the BatchEngine measuring the
     *                     instances: 0 = the OT_HOST_THREADS switch.
     *                     Reports are bit-identical for every value.
     */
    explicit ScenarioEngine(unsigned host_threads = 0);

    ScenarioEngine(const ScenarioEngine &) = delete;
    ScenarioEngine &operator=(const ScenarioEngine &) = delete;

    /** Run the spec under its own scheduler directive. */
    ScenarioReport run(const ScenarioSpec &spec);

    /**
     * Run the spec under `scheduler` (ignoring its directive): the
     * comparison entry point — the arrival stream and measurements
     * are shared, only the policy differs.
     */
    ScenarioReport run(const ScenarioSpec &spec,
                       SchedulerKind scheduler);

    workload::BatchEngine &batch() { return _batch; }
    sim::StatSet &stats() { return _batch.stats(); }

    /**
     * Attach a model-time tracer: the measurement runs record their
     * spans/charges through the BatchEngine, and the queue walk adds
     * one "scenario" span per completed job (start -> completion).
     * nullptr detaches.
     */
    void
    setTracer(trace::Tracer *tracer)
    {
        _batch.setTracer(tracer);
        _tracer = tracer;
    }

  private:
    /** Measure every not-yet-seen InstanceSpec in the stream. */
    void measure(const std::vector<Arrival> &arrivals);

    workload::BatchEngine _batch;
    /** Measured model service time per distinct instance. */
    std::map<workload::InstanceSpec, ModelTime> _serviceTime;
    /** First measured time per machine shape (the SJF estimates). */
    std::map<workload::CacheKey, ModelTime> _estimate;
    bool _allVerified = true;
    trace::Tracer *_tracer = nullptr;
};

} // namespace ot::scenario

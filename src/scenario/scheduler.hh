/**
 * @file
 * The pluggable scheduling policies: which queued job starts next.
 *
 * The queueing engine (engine.hh) keeps the admission queue as plain
 * data and asks pickNext() for a decision whenever a worker frees —
 * so a policy is one pure ranking function, not a stateful object.
 * Every policy breaks ties on the lowest job index (= arrival
 * order), making the ranking a strict total order: the decision is a
 * pure function of the queue contents, independent of host threads.
 *
 * FIFO ranks by arrival, SJF by the cached per-shape cost estimate
 * (see ScenarioEngine — first measured time per NetworkCache key,
 * deliberately not a per-job oracle), fair-share by least model
 * service time delivered to the job's client so far, and EDF by
 * arrival + the client's SLO target.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "scenario/spec.hh"
#include "vlsi/delay.hh"

namespace ot::scenario {

/** One queued job, as the policies see it. */
struct QueueJob
{
    /** Index into the scenario's job table (= arrival order). */
    std::size_t job = 0;
    vlsi::ModelTime arrive = 0;
    /** Index into ScenarioSpec::clients. */
    unsigned client = 0;
    /** Cached cost estimate for the job's machine shape (SJF). */
    vlsi::ModelTime estimate = 0;
    /** arrive + the client's SLO target; maxed out when none (EDF). */
    vlsi::ModelTime deadline = 0;
};

/**
 * The index into `queue` of the job `kind` starts next.  `served` is
 * indexed by client and holds the model service time each client has
 * received so far (fair-share's currency).  The queue must be
 * non-empty.
 */
std::size_t pickNext(SchedulerKind kind,
                     const std::vector<QueueJob> &queue,
                     const std::vector<vlsi::ModelTime> &served);

} // namespace ot::scenario

/**
 * @file
 * Scenario specifications: traffic shape, scheduling policy, client
 * mixes and SLO targets for a *stream* of workload instances.
 *
 * A ScenarioSpec extends the WorkloadSpec idea from "which instances"
 * to "how they arrive": a seeded arrival process (Poisson, bursty
 * on-off, diurnal rate wave) emits InstanceSpec arrivals in model
 * time, drawn from weighted per-client mixes, and a pluggable
 * scheduler admits them to the machines the BatchEngine measures
 * (engine.hh).  Specs live in checked-in, diffable `.scn` files — a
 * line-oriented grammar that reuses the workload
 * `algo:net:n:model[:scaled][:seed=K]` instance tokens — and round-
 * trip through JSON.  Both parsers report errors ("line N: ..." /
 * byte offsets) instead of dying, mirroring workload/spec.hh, and
 * describeInvalid() covers the semantic rules the grammar cannot.
 *
 * The `.scn` grammar, one directive per line, `#` starts a comment:
 *
 *     scenario <name>
 *     arrival poisson|bursty|diurnal mean=T duration=T [max=K]
 *             [seed=K] [on=T] [off=T] [period=T] [amp=P]
 *             [seeds=vary|fixed]
 *     scheduler fifo|sjf|fair|edf [workers=K]
 *     queue [cap=K] [shed=drop|defer]
 *     client <name> [weight=K] [quota=K] [slo=T] [slo_pct=50|95|99]
 *            mix=<inst>[,<inst>...]
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vlsi/delay.hh"
#include "workload/spec.hh"

namespace ot::scenario {

/** The arrival processes a scenario can draw from. */
enum class ArrivalKind : std::uint8_t {
    Poisson, ///< memoryless: exponential inter-arrival gaps
    Bursty,  ///< MMPP-style on-off: Poisson inside exponential
             ///< ON dwells, silent through OFF dwells
    Diurnal, ///< Poisson with a triangle-wave rate over one period
};

/** The scheduling policies (scheduler.hh implements them). */
enum class SchedulerKind : std::uint8_t {
    Fifo,      ///< arrival order
    Sjf,       ///< shortest job first, by cached shape estimates
    FairShare, ///< least-served client first, FIFO within a client
    Edf,       ///< earliest deadline (arrival + client SLO) first
};

/** What happens to an arrival that finds the admission queue full. */
enum class ShedPolicy : std::uint8_t {
    Drop,  ///< reject it outright
    Defer, ///< park it in a backlog; re-admitted when space frees
};

/** "poisson", "bursty" or "diurnal". */
std::string toString(ArrivalKind kind);

/** "fifo", "sjf", "fair" or "edf". */
std::string toString(SchedulerKind kind);

/** "drop" or "defer". */
std::string toString(ShedPolicy shed);

/** Parse a scheduler name; false on anything but the four above. */
bool schedulerFromString(const std::string &s, SchedulerKind &out);

/** The arrival process of a scenario, all in model time. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Mean inter-arrival gap (during ON dwells for Bursty). */
    vlsi::ModelTime mean = 0;
    /** Generation horizon: no arrivals after this model time. */
    vlsi::ModelTime duration = 0;
    /** Hard cap on the number of arrivals (0 = horizon only). */
    std::size_t maxArrivals = 0;
    /** Seed of every stream the generator derives. */
    std::uint64_t seed = 1;
    /** Bursty: mean ON dwell. */
    vlsi::ModelTime onMean = 0;
    /** Bursty: mean OFF dwell. */
    vlsi::ModelTime offMean = 0;
    /** Diurnal: period of the rate wave. */
    vlsi::ModelTime period = 0;
    /** Diurnal: rate swing as an integer percent in [0, 99]. */
    unsigned ampPct = 0;
    /** Give every arrival a fresh input seed (else keep the mix's). */
    bool varySeeds = true;

    bool operator==(const ArrivalConfig &other) const = default;
};

/** One traffic class: a weighted mix of instances plus its SLO. */
struct ClientConfig
{
    std::string name;
    /** Share of arrivals, relative to the other clients' weights. */
    unsigned weight = 1;
    /** Max outstanding (queued + deferred + running) jobs; 0 = off. */
    unsigned quota = 0;
    /** Sojourn-time target in model time; 0 = no SLO. */
    vlsi::ModelTime slo = 0;
    /** Percentile the target applies to: 50, 95 or 99. */
    unsigned sloPct = 95;
    /** Instances this client draws from, uniformly. */
    std::vector<workload::InstanceSpec> mix;

    bool operator==(const ClientConfig &other) const = default;
};

/** A complete scenario: traffic, policy and clients. */
struct ScenarioSpec
{
    std::string name;
    ArrivalConfig arrival;
    SchedulerKind scheduler = SchedulerKind::Fifo;
    /** Model servers jobs are dispatched onto. */
    unsigned workers = 1;
    /** Admission-queue capacity; 0 = unbounded (never sheds). */
    std::size_t queueCap = 0;
    ShedPolicy shed = ShedPolicy::Drop;
    std::vector<ClientConfig> clients;

    bool operator==(const ScenarioSpec &other) const = default;
};

/**
 * Engine-side contract (mirrors workload::validate): asserts that
 * describeInvalid(spec) is empty.  CLI front ends call
 * describeInvalid() first and reject politely.
 */
void validate(const ScenarioSpec &spec);

/**
 * Non-fatal validation: "" when the spec is runnable, otherwise a
 * one-line description of the first problem found (missing name or
 * clients, zero rates/horizons, unbounded arrival counts, bad SLO
 * percentiles, mix sizes the machines would reject, ...).
 */
std::string describeInvalid(const ScenarioSpec &spec);

/**
 * Parse the `.scn` grammar (see the file comment).  Returns false
 * and sets `err` to "line N: ..." on malformed input.  The result
 * may still need describeInvalid() — the grammar cannot see semantic
 * problems like a missing arrival rate.
 */
bool parseScenario(const std::string &text, ScenarioSpec &out,
                   std::string &err);

/**
 * Parse the JSON form toJson() emits (keys in any order; this is a
 * scenario reader, not a general JSON library).  Returns false and
 * sets `err` (with a byte offset) on malformed input.
 */
bool parseScenarioJson(const std::string &text, ScenarioSpec &out,
                       std::string &err);

/** The spec as JSON, in the form parseScenarioJson accepts. */
std::string toJson(const ScenarioSpec &spec);

/**
 * A small two-client smoke scenario (Poisson arrivals over mixed
 * sort/matmul sizes, two workers, bounded queue) used by tests and
 * benches; examples/demo.scn is the checked-in acceptance scenario.
 */
ScenarioSpec demoScenario();

} // namespace ot::scenario

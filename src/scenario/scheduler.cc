#include "scenario/scheduler.hh"

#include <cassert>

namespace ot::scenario {

// The deterministic-replay story assumes ranking is a pure function
// of (kind, queue, served); otcheck proves it (rule `sched-purity`).
// otcheck:pure
std::size_t
pickNext(SchedulerKind kind, const std::vector<QueueJob> &queue,
         const std::vector<vlsi::ModelTime> &served)
{
    assert(!queue.empty() && "scheduler: empty queue");
    // Strict-weak "starts before" between two queued jobs; falls
    // through to the job index, so the order is always total.
    auto before = [&](const QueueJob &a, const QueueJob &b) {
        switch (kind) {
          case SchedulerKind::Fifo:
            break; // arrival order == job index order
          case SchedulerKind::Sjf:
            if (a.estimate != b.estimate)
                return a.estimate < b.estimate;
            break;
          case SchedulerKind::FairShare: {
            vlsi::ModelTime sa = served[a.client];
            vlsi::ModelTime sb = served[b.client];
            if (sa != sb)
                return sa < sb;
            break;
          }
          case SchedulerKind::Edf:
            if (a.deadline != b.deadline)
                return a.deadline < b.deadline;
            break;
        }
        return a.job < b.job;
    };
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i)
        if (before(queue[i], queue[best]))
            best = i;
    return best;
}

} // namespace ot::scenario

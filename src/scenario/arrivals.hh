/**
 * @file
 * Deterministic arrival generation: spec -> the instance stream.
 *
 * generateArrivals() is a pure function of the ScenarioSpec — the
 * arrival seed fans out into five independent StreamRng streams
 * (gaps, burst dwells, client pick, mix pick, input seeds), so the
 * sequence is bit-identical across runs, hosts and OT_HOST_THREADS,
 * and two processes sharing a seed see the same traffic.  Arrival
 * times are strictly increasing (gaps are floored at one model-time
 * tick), which the queueing engine (engine.hh) relies on.
 */

#pragma once

#include <vector>

#include "scenario/spec.hh"
#include "vlsi/delay.hh"
#include "workload/spec.hh"

namespace ot::scenario {

/** One generated arrival: an instance entering the system. */
struct Arrival
{
    /** Model time the instance enters admission. */
    vlsi::ModelTime at = 0;
    /** Index into ScenarioSpec::clients. */
    unsigned client = 0;
    workload::InstanceSpec inst;

    bool operator==(const Arrival &other) const = default;
};

/**
 * Generate the scenario's arrival sequence (validate()s the spec).
 * Stops at the arrival horizon, or after maxArrivals when set.
 */
std::vector<Arrival> generateArrivals(const ScenarioSpec &spec);

} // namespace ot::scenario

#include "scenario/arrivals.hh"

#include <cstdint>

#include "scenario/prng.hh"

namespace ot::scenario {

namespace {

/**
 * The next inter-arrival gap for a diurnal process: an exponential
 * draw scaled by the instantaneous rate of a triangle wave.  At the
 * trough the rate is (100-amp)% of nominal, at the crest (100+amp)%.
 */
vlsi::ModelTime
diurnalGap(StreamRng &gaps, const ArrivalConfig &a,
           vlsi::ModelTime now)
{
    double frac = static_cast<double>(now % a.period) /
                  static_cast<double>(a.period);
    double tri = frac < 0.5 ? 2.0 * frac : 2.0 - 2.0 * frac;
    double rate = (100.0 - a.ampPct + 2.0 * a.ampPct * tri) / 100.0;
    double g = gaps.expReal(static_cast<double>(a.mean)) / rate;
    if (g < 1.0)
        return 1;
    return static_cast<vlsi::ModelTime>(g + 0.5);
}

} // namespace

std::vector<Arrival>
generateArrivals(const ScenarioSpec &spec)
{
    validate(spec);
    const ArrivalConfig &a = spec.arrival;

    // One independent stream per decision kind: adding a client or
    // flipping seeds=vary never perturbs the arrival *times*.
    StreamRng gaps(a.seed, 0);
    StreamRng dwell(a.seed, 1);
    StreamRng clientPick(a.seed, 2);
    StreamRng mixPick(a.seed, 3);
    StreamRng seedPick(a.seed, 4);

    std::uint64_t totalWeight = 0;
    for (const ClientConfig &c : spec.clients)
        totalWeight += c.weight;

    std::vector<Arrival> out;
    vlsi::ModelTime cursor = 0;
    // Bursty on-off state: arrivals happen only inside ON windows.
    vlsi::ModelTime winEnd = 0;
    if (a.kind == ArrivalKind::Bursty)
        winEnd = dwell.exponential(a.onMean);

    while (a.maxArrivals == 0 || out.size() < a.maxArrivals) {
        switch (a.kind) {
          case ArrivalKind::Poisson:
            cursor += gaps.exponential(a.mean);
            break;
          case ArrivalKind::Bursty:
            cursor += gaps.exponential(a.mean);
            while (cursor > winEnd) {
                // Skip the OFF dwell; the residual gap carries into
                // the next ON window.
                vlsi::ModelTime over = cursor - winEnd;
                vlsi::ModelTime start =
                    winEnd + dwell.exponential(a.offMean);
                winEnd = start + dwell.exponential(a.onMean);
                cursor = start + over;
            }
            break;
          case ArrivalKind::Diurnal:
            cursor += diurnalGap(gaps, a, cursor);
            break;
        }
        if (cursor > a.duration)
            break;

        Arrival arr;
        arr.at = cursor;
        // Weighted client pick, then a uniform pick from its mix.
        std::uint64_t r = clientPick.uniform(0, totalWeight - 1);
        unsigned ci = 0;
        while (r >= spec.clients[ci].weight) {
            r -= spec.clients[ci].weight;
            ++ci;
        }
        arr.client = ci;
        const ClientConfig &c = spec.clients[ci];
        arr.inst = c.mix[mixPick.uniform(0, c.mix.size() - 1)];
        if (a.varySeeds)
            arr.inst.seed = seedPick.next();
        out.push_back(arr);
    }
    return out;
}

} // namespace ot::scenario

#include "scenario/spec.hh"

#include <cassert>
#include <cctype>

#include "vlsi/bitmath.hh"

namespace ot::scenario {

namespace {

/** Parse a non-negative decimal integer; false on junk or overflow. */
bool
parseUint(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        if (v > (~std::uint64_t{0} - d) / 10)
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

bool
arrivalFromString(const std::string &s, ArrivalKind &out)
{
    if (s == "poisson")
        out = ArrivalKind::Poisson;
    else if (s == "bursty")
        out = ArrivalKind::Bursty;
    else if (s == "diurnal")
        out = ArrivalKind::Diurnal;
    else
        return false;
    return true;
}

bool
shedFromString(const std::string &s, ShedPolicy &out)
{
    if (s == "drop")
        out = ShedPolicy::Drop;
    else if (s == "defer")
        out = ShedPolicy::Defer;
    else
        return false;
    return true;
}

/** Names appear bare in reports and JSON, so keep them word-like. */
bool
validName(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                  c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

/** Split a directive line on blanks (never empty tokens). */
std::vector<std::string>
splitWords(const std::string &line)
{
    std::vector<std::string> words;
    std::string cur;
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty())
                words.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        words.push_back(cur);
    return words;
}

/** Split "key=value"; false when there is no '='. */
bool
splitKeyValue(const std::string &word, std::string &key,
              std::string &value)
{
    std::size_t eq = word.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    key = word.substr(0, eq);
    value = word.substr(eq + 1);
    return true;
}

/** Split a mix value on commas (empty entries preserved -> errors). */
std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

/** Shared by the .scn and JSON readers for mix instance tokens. */
bool
parseMix(const std::vector<std::string> &tokens,
         std::vector<workload::InstanceSpec> &out, std::string &badTok,
         std::string &instErr)
{
    for (const std::string &tok : tokens) {
        workload::InstanceSpec inst;
        if (!workload::parseInstance(tok, inst, instErr)) {
            badTok = tok;
            return false;
        }
        out.push_back(inst);
    }
    return true;
}

/**
 * Line-parser state: the spec under construction plus which
 * directives have been seen (duplicates are errors — a .scn file is
 * a description, not a program).
 */
struct ScnParser
{
    ScenarioSpec spec;
    std::string err;
    std::size_t lineNo = 0;
    bool sawScenario = false;
    bool sawArrival = false;
    bool sawScheduler = false;
    bool sawQueue = false;

    bool
    fail(const std::string &what)
    {
        err = "line " + std::to_string(lineNo) + ": " + what;
        return false;
    }

    bool
    number(const std::string &key, const std::string &value,
           std::uint64_t &out)
    {
        if (!parseUint(value, out))
            return fail("bad integer in '" + key + "=" + value + "'");
        return true;
    }

    bool
    directiveScenario(const std::vector<std::string> &words)
    {
        if (sawScenario)
            return fail("duplicate scenario directive");
        sawScenario = true;
        if (words.size() != 2)
            return fail("scenario needs a name");
        if (!validName(words[1]))
            return fail("scenario name must be [A-Za-z0-9_-]+");
        spec.name = words[1];
        return true;
    }

    bool
    directiveArrival(const std::vector<std::string> &words)
    {
        if (sawArrival)
            return fail("duplicate arrival directive");
        sawArrival = true;
        if (words.size() < 2)
            return fail("arrival needs a process "
                        "(poisson|bursty|diurnal)");
        if (!arrivalFromString(words[1], spec.arrival.kind))
            return fail("unknown arrival process '" + words[1] +
                        "' (poisson|bursty|diurnal)");
        for (std::size_t i = 2; i < words.size(); ++i) {
            std::string key, value;
            if (!splitKeyValue(words[i], key, value))
                return fail("expected key=value, got '" + words[i] +
                            "'");
            if (key == "seeds") {
                if (value == "vary")
                    spec.arrival.varySeeds = true;
                else if (value == "fixed")
                    spec.arrival.varySeeds = false;
                else
                    return fail("seeds must be vary or fixed");
                continue;
            }
            std::uint64_t v = 0;
            if (!number(key, value, v))
                return false;
            if (key == "mean")
                spec.arrival.mean = v;
            else if (key == "duration")
                spec.arrival.duration = v;
            else if (key == "max")
                spec.arrival.maxArrivals =
                    static_cast<std::size_t>(v);
            else if (key == "seed")
                spec.arrival.seed = v;
            else if (key == "on")
                spec.arrival.onMean = v;
            else if (key == "off")
                spec.arrival.offMean = v;
            else if (key == "period")
                spec.arrival.period = v;
            else if (key == "amp") {
                if (v > 99)
                    return fail("amp must be an integer percent "
                                "in [0, 99]");
                spec.arrival.ampPct = static_cast<unsigned>(v);
            } else
                return fail("unknown arrival option '" + key +
                            "' (mean|duration|max|seed|on|off|"
                            "period|amp|seeds)");
        }
        return true;
    }

    bool
    directiveScheduler(const std::vector<std::string> &words)
    {
        if (sawScheduler)
            return fail("duplicate scheduler directive");
        sawScheduler = true;
        if (words.size() < 2)
            return fail("scheduler needs a policy "
                        "(fifo|sjf|fair|edf)");
        if (!schedulerFromString(words[1], spec.scheduler))
            return fail("unknown scheduler '" + words[1] +
                        "' (fifo|sjf|fair|edf)");
        for (std::size_t i = 2; i < words.size(); ++i) {
            std::string key, value;
            if (!splitKeyValue(words[i], key, value))
                return fail("expected key=value, got '" + words[i] +
                            "'");
            std::uint64_t v = 0;
            if (key == "workers") {
                if (!number(key, value, v))
                    return false;
                spec.workers = static_cast<unsigned>(v);
            } else
                return fail("unknown scheduler option '" + key +
                            "' (workers)");
        }
        return true;
    }

    bool
    directiveQueue(const std::vector<std::string> &words)
    {
        if (sawQueue)
            return fail("duplicate queue directive");
        sawQueue = true;
        for (std::size_t i = 1; i < words.size(); ++i) {
            std::string key, value;
            if (!splitKeyValue(words[i], key, value))
                return fail("expected key=value, got '" + words[i] +
                            "'");
            if (key == "cap") {
                std::uint64_t v = 0;
                if (!number(key, value, v))
                    return false;
                spec.queueCap = static_cast<std::size_t>(v);
            } else if (key == "shed") {
                if (!shedFromString(value, spec.shed))
                    return fail("shed must be drop or defer");
            } else
                return fail("unknown queue option '" + key +
                            "' (cap|shed)");
        }
        return true;
    }

    bool
    directiveClient(const std::vector<std::string> &words)
    {
        if (words.size() < 2)
            return fail("client needs a name");
        ClientConfig client;
        if (!validName(words[1]))
            return fail("client name must be [A-Za-z0-9_-]+");
        client.name = words[1];
        for (const ClientConfig &other : spec.clients)
            if (other.name == client.name)
                return fail("duplicate client '" + client.name + "'");
        for (std::size_t i = 2; i < words.size(); ++i) {
            std::string key, value;
            if (!splitKeyValue(words[i], key, value))
                return fail("expected key=value, got '" + words[i] +
                            "'");
            if (key == "mix") {
                std::string badTok, instErr;
                if (!parseMix(splitCommas(value), client.mix, badTok,
                              instErr))
                    return fail("bad mix instance '" + badTok +
                                "': " + instErr);
                continue;
            }
            std::uint64_t v = 0;
            if (!number(key, value, v))
                return false;
            if (key == "weight")
                client.weight = static_cast<unsigned>(v);
            else if (key == "quota")
                client.quota = static_cast<unsigned>(v);
            else if (key == "slo")
                client.slo = v;
            else if (key == "slo_pct")
                client.sloPct = static_cast<unsigned>(v);
            else
                return fail("unknown client option '" + key +
                            "' (weight|quota|slo|slo_pct|mix)");
        }
        spec.clients.push_back(client);
        return true;
    }

    bool
    line(const std::string &text)
    {
        std::string stripped = text.substr(0, text.find('#'));
        std::vector<std::string> words = splitWords(stripped);
        if (words.empty())
            return true;
        if (words[0] == "scenario")
            return directiveScenario(words);
        if (words[0] == "arrival")
            return directiveArrival(words);
        if (words[0] == "scheduler")
            return directiveScheduler(words);
        if (words[0] == "queue")
            return directiveQueue(words);
        if (words[0] == "client")
            return directiveClient(words);
        return fail("unknown directive '" + words[0] +
                    "' (scenario|arrival|scheduler|queue|client)");
    }
};

/**
 * Cursor over a JSON text for the one document shape
 * parseScenarioJson accepts (same discipline as workload/spec.cc:
 * all failures funnel through fail(), which records the byte offset
 * of the first error).
 */
struct JsonCursor
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    /** Peek the next non-whitespace character ('\0' at end). */
    char
    peek()
    {
        skipWs();
        return pos < text.size() ? text[pos] : '\0';
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                ++pos;
                if (pos >= text.size())
                    break;
            }
            out += text[pos++];
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseNumber(std::uint64_t &out)
    {
        skipWs();
        std::string digits;
        while (pos < text.size() && text[pos] >= '0' &&
               text[pos] <= '9')
            digits += text[pos++];
        if (!parseUint(digits, out))
            return fail("expected a non-negative integer");
        return true;
    }
};

bool
parseArrivalObject(JsonCursor &cur, ArrivalConfig &out)
{
    if (!cur.consume('{'))
        return false;
    bool first = true;
    while (cur.peek() != '}') {
        if (!first && !cur.consume(','))
            return false;
        first = false;
        std::string key;
        if (!cur.parseString(key) || !cur.consume(':'))
            return false;
        if (key == "process") {
            std::string v;
            if (!cur.parseString(v))
                return false;
            if (!arrivalFromString(v, out.kind))
                return cur.fail("unknown arrival process '" + v +
                                "'");
        } else if (key == "seeds") {
            std::string v;
            if (!cur.parseString(v))
                return false;
            if (v == "vary")
                out.varySeeds = true;
            else if (v == "fixed")
                out.varySeeds = false;
            else
                return cur.fail("seeds must be vary or fixed");
        } else {
            std::uint64_t v = 0;
            if (!cur.parseNumber(v))
                return false;
            if (key == "mean")
                out.mean = v;
            else if (key == "duration")
                out.duration = v;
            else if (key == "max")
                out.maxArrivals = static_cast<std::size_t>(v);
            else if (key == "seed")
                out.seed = v;
            else if (key == "on")
                out.onMean = v;
            else if (key == "off")
                out.offMean = v;
            else if (key == "period")
                out.period = v;
            else if (key == "amp")
                out.ampPct = static_cast<unsigned>(v);
            else
                return cur.fail("unknown arrival key '" + key + "'");
        }
    }
    return cur.consume('}');
}

bool
parseClientObject(JsonCursor &cur, ClientConfig &out)
{
    if (!cur.consume('{'))
        return false;
    bool first = true;
    while (cur.peek() != '}') {
        if (!first && !cur.consume(','))
            return false;
        first = false;
        std::string key;
        if (!cur.parseString(key) || !cur.consume(':'))
            return false;
        if (key == "name") {
            if (!cur.parseString(out.name))
                return false;
        } else if (key == "mix") {
            if (!cur.consume('['))
                return false;
            std::vector<std::string> tokens;
            while (cur.peek() != ']') {
                if (!tokens.empty() && !cur.consume(','))
                    return false;
                std::string tok;
                if (!cur.parseString(tok))
                    return false;
                tokens.push_back(tok);
            }
            if (!cur.consume(']'))
                return false;
            std::string badTok, instErr;
            if (!parseMix(tokens, out.mix, badTok, instErr))
                return cur.fail("bad mix token '" + badTok +
                                "': " + instErr);
        } else {
            std::uint64_t v = 0;
            if (!cur.parseNumber(v))
                return false;
            if (key == "weight")
                out.weight = static_cast<unsigned>(v);
            else if (key == "quota")
                out.quota = static_cast<unsigned>(v);
            else if (key == "slo")
                out.slo = v;
            else if (key == "slo_pct")
                out.sloPct = static_cast<unsigned>(v);
            else
                return cur.fail("unknown client key '" + key + "'");
        }
    }
    return cur.consume('}');
}

} // namespace

std::string
toString(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    return "?";
}

std::string
toString(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fifo:
        return "fifo";
      case SchedulerKind::Sjf:
        return "sjf";
      case SchedulerKind::FairShare:
        return "fair";
      case SchedulerKind::Edf:
        return "edf";
    }
    return "?";
}

std::string
toString(ShedPolicy shed)
{
    return shed == ShedPolicy::Drop ? "drop" : "defer";
}

bool
schedulerFromString(const std::string &s, SchedulerKind &out)
{
    if (s == "fifo")
        out = SchedulerKind::Fifo;
    else if (s == "sjf")
        out = SchedulerKind::Sjf;
    else if (s == "fair")
        out = SchedulerKind::FairShare;
    else if (s == "edf")
        out = SchedulerKind::Edf;
    else
        return false;
    return true;
}

void
validate(const ScenarioSpec &spec)
{
    assert(describeInvalid(spec).empty() && "scenario: invalid spec");
    (void)spec;
}

std::string
describeInvalid(const ScenarioSpec &spec)
{
    if (spec.name.empty())
        return "scenario: missing name";
    const ArrivalConfig &a = spec.arrival;
    if (a.mean < 1)
        return "arrival: mean must be >= 1";
    if (a.duration < 1)
        return "arrival: duration must be >= 1";
    if (a.maxArrivals == 0 && a.duration / a.mean > 1000000)
        return "arrival: duration/mean implies more than 1M "
               "arrivals; set max=";
    if (a.kind == ArrivalKind::Bursty && (a.onMean < 1 || a.offMean < 1))
        return "bursty arrival: on and off dwell means must be >= 1";
    if (a.kind == ArrivalKind::Diurnal && a.period < 1)
        return "diurnal arrival: period must be >= 1";
    if (spec.workers < 1)
        return "scheduler: workers must be >= 1";
    if (spec.clients.empty())
        return "scenario: no clients";
    for (const ClientConfig &c : spec.clients) {
        if (c.weight < 1)
            return "client '" + c.name + "': weight must be >= 1";
        if (c.sloPct != 50 && c.sloPct != 95 && c.sloPct != 99)
            return "client '" + c.name +
                   "': slo_pct must be 50, 95 or 99";
        if (c.mix.empty())
            return "client '" + c.name + "': empty mix";
        for (std::size_t i = 0; i < c.mix.size(); ++i) {
            const workload::InstanceSpec &inst = c.mix[i];
            if (inst.n < 2 || inst.n > (std::size_t{1} << 14))
                return "client '" + c.name + "': mix instance " +
                       std::to_string(i) +
                       ": size out of range [2, 16384]";
            if (!vlsi::isPow2(inst.n))
                return "client '" + c.name + "': mix instance " +
                       std::to_string(i) + ": size " +
                       std::to_string(inst.n) +
                       " is not a power of two";
        }
    }
    return "";
}

bool
parseScenario(const std::string &text, ScenarioSpec &out,
              std::string &err)
{
    ScnParser parser;
    std::string line;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        line = text.substr(start, end - start);
        ++parser.lineNo;
        if (!parser.line(line)) {
            err = parser.err;
            return false;
        }
        start = end + 1;
    }
    out = std::move(parser.spec);
    return true;
}

bool
parseScenarioJson(const std::string &text, ScenarioSpec &out,
                  std::string &err)
{
    JsonCursor cur{text, 0, ""};
    ScenarioSpec spec;

    bool ok = [&] {
        if (!cur.consume('{'))
            return false;
        bool first = true;
        while (cur.peek() != '}') {
            if (!first && !cur.consume(','))
                return false;
            first = false;
            std::string key;
            if (!cur.parseString(key) || !cur.consume(':'))
                return false;
            if (key == "scenario") {
                if (!cur.parseString(spec.name))
                    return false;
            } else if (key == "arrival") {
                if (!parseArrivalObject(cur, spec.arrival))
                    return false;
            } else if (key == "scheduler") {
                std::string v;
                if (!cur.parseString(v))
                    return false;
                if (!schedulerFromString(v, spec.scheduler))
                    return cur.fail("unknown scheduler '" + v + "'");
            } else if (key == "workers") {
                std::uint64_t v = 0;
                if (!cur.parseNumber(v))
                    return false;
                spec.workers = static_cast<unsigned>(v);
            } else if (key == "queue_cap") {
                std::uint64_t v = 0;
                if (!cur.parseNumber(v))
                    return false;
                spec.queueCap = static_cast<std::size_t>(v);
            } else if (key == "shed") {
                std::string v;
                if (!cur.parseString(v))
                    return false;
                if (!shedFromString(v, spec.shed))
                    return cur.fail("unknown shed policy '" + v +
                                    "'");
            } else if (key == "clients") {
                if (!cur.consume('['))
                    return false;
                while (cur.peek() != ']') {
                    if (!spec.clients.empty() && !cur.consume(','))
                        return false;
                    ClientConfig client;
                    if (!parseClientObject(cur, client))
                        return false;
                    spec.clients.push_back(client);
                }
                if (!cur.consume(']'))
                    return false;
            } else {
                return cur.fail("unknown scenario key '" + key +
                                "'");
            }
        }
        if (!cur.consume('}'))
            return false;
        cur.skipWs();
        if (cur.pos != text.size())
            return cur.fail("trailing garbage");
        return true;
    }();

    if (!ok) {
        err = cur.err.empty() ? "malformed scenario JSON" : cur.err;
        return false;
    }
    out = std::move(spec);
    return true;
}

std::string
toJson(const ScenarioSpec &spec)
{
    const ArrivalConfig &a = spec.arrival;
    std::string out = "{\"scenario\": \"" + spec.name + "\",\n";
    out += " \"arrival\": {\"process\": \"" + toString(a.kind) + "\"";
    out += ", \"mean\": " + std::to_string(a.mean);
    out += ", \"duration\": " + std::to_string(a.duration);
    out += ", \"max\": " + std::to_string(a.maxArrivals);
    out += ", \"seed\": " + std::to_string(a.seed);
    out += ", \"on\": " + std::to_string(a.onMean);
    out += ", \"off\": " + std::to_string(a.offMean);
    out += ", \"period\": " + std::to_string(a.period);
    out += ", \"amp\": " + std::to_string(a.ampPct);
    out += std::string(", \"seeds\": \"") +
           (a.varySeeds ? "vary" : "fixed") + "\"},\n";
    out += " \"scheduler\": \"" + toString(spec.scheduler) + "\"";
    out += ", \"workers\": " + std::to_string(spec.workers);
    out += ", \"queue_cap\": " + std::to_string(spec.queueCap);
    out += ", \"shed\": \"" + toString(spec.shed) + "\",\n";
    out += " \"clients\": [";
    for (std::size_t i = 0; i < spec.clients.size(); ++i) {
        const ClientConfig &c = spec.clients[i];
        if (i)
            out += ",";
        out += "\n  {\"name\": \"" + c.name + "\"";
        out += ", \"weight\": " + std::to_string(c.weight);
        out += ", \"quota\": " + std::to_string(c.quota);
        out += ", \"slo\": " + std::to_string(c.slo);
        out += ", \"slo_pct\": " + std::to_string(c.sloPct);
        out += ", \"mix\": [";
        for (std::size_t j = 0; j < c.mix.size(); ++j) {
            if (j)
                out += ", ";
            out += "\"" + workload::toToken(c.mix[j]) + "\"";
        }
        out += "]}";
    }
    out += "\n]}\n";
    return out;
}

ScenarioSpec
demoScenario()
{
    // Two traffic classes over mixed sort/matmul shapes: enough load
    // on two workers that the queue forms (so the policies differ)
    // but bounded, so tests and benches stay fast.
    ScenarioSpec spec;
    spec.name = "smoke";
    spec.arrival.kind = ArrivalKind::Poisson;
    spec.arrival.mean = 130;
    spec.arrival.duration = 60000;
    spec.arrival.maxArrivals = 64;
    spec.arrival.seed = 42;
    spec.scheduler = SchedulerKind::Fifo;
    spec.workers = 2;
    spec.queueCap = 16;
    spec.shed = ShedPolicy::Drop;

    ClientConfig fast;
    fast.name = "interactive";
    fast.weight = 3;
    fast.slo = 2500;
    fast.sloPct = 95;
    fast.mix.push_back({workload::Algo::Sort, "otn", 16,
                        vlsi::DelayModel::Logarithmic, false, 1});
    fast.mix.push_back({workload::Algo::Sort, "otn", 32,
                        vlsi::DelayModel::Logarithmic, false, 1});
    spec.clients.push_back(fast);

    ClientConfig bulk;
    bulk.name = "batch";
    bulk.weight = 1;
    bulk.quota = 8;
    bulk.mix.push_back({workload::Algo::Sort, "otn", 64,
                        vlsi::DelayModel::Logarithmic, false, 1});
    bulk.mix.push_back({workload::Algo::MatMul, "otn", 16,
                        vlsi::DelayModel::Logarithmic, false, 1});
    spec.clients.push_back(bulk);
    return spec;
}

} // namespace ot::scenario

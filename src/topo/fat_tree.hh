/**
 * @file
 * A two-layer fat-tree built from switch port counts.
 *
 * Following Solnushkin's automated two-layer design (arXiv:1301.6179):
 * given switches of p ports, the edge layer uses p/2 ports down (to
 * compute nodes) and p/2 up (to the spine), and a spine of p/2
 * switches connects up to p edge switches — so one switch model spans
 * machines of up to p^2/2 nodes with full bisection.  The builder
 * picks the smallest even p >= 4 whose capacity covers N unless the
 * caller fixes the port count explicitly (bad port counts assert:
 * that is the malformed-spec failure-injection surface).
 *
 * Geometry for the delay-model-aware accounting: edge switches sit in
 * a row, each above its p/2 nodes (block pitch Theta(p/2 * word));
 * the spine row runs above them, so a node-to-node route crosses two
 * short node wires and, across blocks, two long spine wires of up to
 * half the chip width.  Intra-block exchanges therefore stay cheap
 * under Thompson's model while cross-block traffic pays wire delay —
 * the property the conformance tables surface against the
 * orthogonal-tree machines.
 *
 * All algorithms run through the generic primitive fallbacks; the
 * fat-tree contributes only its primitive costs.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/time_accountant.hh"
#include "topo/machine.hh"
#include "trace/tracer.hh"
#include "vlsi/delay.hh"

namespace ot::topo {

/** A two-layer fat-tree of p-port switches over N nodes ("fattree"). */
class FatTreeMachine : public Machine
{
  public:
    /**
     * @param spec  The machine spec (n = node count).
     * @param ports Switch port count p; 0 picks defaultPorts(n).
     *              Asserts: p even, p >= 4, capacity p^2/2 >= n.
     */
    explicit FatTreeMachine(const MachineSpec &spec, unsigned ports = 0);

    /** Smallest even p >= 4 with p^2/2 >= n. */
    static unsigned defaultPorts(std::size_t n);

    unsigned ports() const { return _ports; }
    /** Nodes per edge switch: p/2. */
    unsigned nodesPerSwitch() const { return _ports / 2; }
    /** Edge switches actually populated. */
    std::size_t edgeSwitches() const { return _edgeSwitches; }
    /** Spine switches: p/2. */
    unsigned spines() const { return _ports / 2; }

    /** Wire from a node to its edge switch, lambda units. */
    vlsi::WireLength nodeWire() const { return _blockPitch; }
    /** Longest edge-to-spine wire, lambda units. */
    vlsi::WireLength spineWire() const { return _spineWire; }

    void reset() override { _acct.reset(); }
    std::uint64_t area() const override;
    std::uint64_t steps() const override { return _acct.steps(); }
    ModelTime now() const override { return _acct.now(); }
    void charge(ModelTime dt) override { _acct.advance(dt); }
    void setTracer(trace::Tracer *tracer) override
    {
        _acct.setTracer(tracer);
    }

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

  private:
    unsigned _ports;
    std::size_t _edgeSwitches;
    /** Width of one edge block (switch plus its nodes). */
    vlsi::WireLength _blockPitch;
    /** Worst-case edge-to-spine wire. */
    vlsi::WireLength _spineWire;
    sim::TimeAccountant _acct;
};

} // namespace ot::topo

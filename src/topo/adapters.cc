#include "topo/adapters.hh"

#include <cassert>

#include "layout/otc_layout.hh"
#include "layout/otn_layout.hh"
#include "otc/sort.hh"
#include "otn/connected_components.hh"
#include "otn/matmul.hh"
#include "otn/mst.hh"
#include "otn/registers.hh"
#include "otn/shortest_paths.hh"
#include "otn/sort.hh"
#include "vlsi/bitmath.hh"

namespace ot::topo {

namespace {

/** Bring a (possibly reused) OTN back to its post-construction state. */
void
resetOtnState(otn::OrthogonalTreesNetwork &net)
{
    for (unsigned r = 0; r < otn::kNumRegs; ++r)
        net.fillReg(static_cast<otn::Reg>(r), 0);
    for (std::size_t i = 0; i < net.n(); ++i) {
        net.rowRoot(i) = otn::kNull;
        net.colRoot(i) = otn::kNull;
    }
    net.resetTime();
}

} // namespace

// ---------------------------------------------------------------- OTN

OtnTopoMachine::OtnTopoMachine(const MachineSpec &spec)
    : OtnTopoMachine(spec,
                     std::make_unique<otn::OrthogonalTreesNetwork>(
                         spec.n, spec.cost(), layout::LayoutParams{},
                         /*host_threads=*/1))
{
}

OtnTopoMachine::OtnTopoMachine(
    const MachineSpec &spec,
    std::unique_ptr<otn::OrthogonalTreesNetwork> net)
    : Machine(spec), _net(std::move(net))
{
}

void
OtnTopoMachine::reset()
{
    resetOtnState(*_net);
}

std::uint64_t
OtnTopoMachine::area() const
{
    return _net->chipLayout().metrics().area();
}

ModelTime
OtnTopoMachine::exchangeStepCost(std::size_t dist) const
{
    // Any pair distance routes leaf -> root -> leaf through one tree.
    (void)dist;
    return 2 * _net->treeTraversalCost() + cost().bitSerialOp();
}

ModelTime
OtnTopoMachine::broadcastCost() const
{
    return _net->treeTraversalCost();
}

ModelTime
OtnTopoMachine::reduceCost() const
{
    return _net->treeReduceCost();
}

SortRun
OtnTopoMachine::runSort(const std::vector<std::uint64_t> &values)
{
    auto r = otn::sortOtn(*_net, values);
    return {std::move(r.sorted), r.time, 0};
}

MatMulRun
OtnTopoMachine::runMatMul(const linalg::IntMatrix &a,
                          const linalg::IntMatrix &b)
{
    auto r = otn::matMulPipelined(*_net, a, b);
    return {std::move(r.product), r.time, 0};
}

MatMulRun
OtnTopoMachine::runBoolMatMul(const linalg::BoolMatrix &a,
                              const linalg::BoolMatrix &b)
{
    auto r = otn::boolMatMulPipelined(*_net, a, b);
    return {std::move(r.product), r.time, 0};
}

CcRun
OtnTopoMachine::runConnectedComponents(const graph::Graph &g)
{
    auto r = otn::connectedComponentsOtn(*_net, g);
    return {std::move(r.labels), r.time, 0};
}

MstRun
OtnTopoMachine::runMst(const graph::WeightedGraph &g)
{
    auto r = otn::mstOtn(*_net, g);
    return {std::move(r.edges), r.time, 0};
}

SsspRun
OtnTopoMachine::runShortestPaths(const graph::WeightedGraph &g,
                                 std::size_t src)
{
    auto r = otn::ssspOtn(*_net, g, src);
    return {std::move(r.dist), r.time, 0};
}

// ------------------------------------------------------------ OTC-emu

OtcEmulatedTopoMachine::OtcEmulatedTopoMachine(const MachineSpec &spec)
    : OtnTopoMachine(spec,
                     std::make_unique<otc::OtcEmulatedOtn>(
                         spec.n, spec.cost(), spec.cycleLen,
                         /*host_threads=*/1)),
      _emu(static_cast<otc::OtcEmulatedOtn *>(_net.get()))
{
    assert(spec.cycleLen >= 1 && "otc-emu: cycle length not set");
}

std::uint64_t
OtcEmulatedTopoMachine::area() const
{
    return _emu->otcLayout().metrics().area();
}

MatMulRun
OtcEmulatedTopoMachine::runBoolMatMul(const linalg::BoolMatrix &a,
                                      const linalg::BoolMatrix &b)
{
    auto r = otn::boolMatMulReplicated(*_net, a, b);
    // The Table II chip: N^2/log^2 N cycles per side, cycles of
    // log^2 N one-bit BPs (see otc::boolMatMulOtc).
    const unsigned logn = vlsi::logCeilAtLeast1(n());
    layout::OtcLayout chip(vlsi::ceilDiv(n() * n(), logn * logn),
                           logn * logn, /*word_bits=*/1,
                           /*compact_bps=*/true);
    return {std::move(r.product), r.time, chip.metrics().area()};
}

// ---------------------------------------------------------- OTC native

OtcNativeTopoMachine::OtcNativeTopoMachine(const MachineSpec &spec)
    : Machine(spec)
{
    assert(spec.cycleLen >= 1 && "otc: cycle length not set");
    // Ceiling division: floor would under-provision when L does not
    // divide N (n=8, L=3 needs 3 cycles per row, not 2); nextPow2 in
    // the network constructor makes both roundings identical at every
    // other power-of-two size, so cached model times are unchanged.
    _net = std::make_unique<otc::OtcNetwork>(
        vlsi::ceilDiv(spec.n, spec.cycleLen), spec.cycleLen, spec.cost(),
        /*host_threads=*/1);
}

void
OtcNativeTopoMachine::reset()
{
    otc::OtcNetwork &net = *_net;
    for (unsigned r = 0; r < otn::kNumRegs; ++r)
        net.fillReg(static_cast<otn::Reg>(r), 0);
    for (std::size_t i = 0; i < net.k(); ++i) {
        net.rowStream(i).assign(net.cycleLen(), otn::kNull);
        net.colStream(i).assign(net.cycleLen(), otn::kNull);
    }
    net.resetTime();
}

std::uint64_t
OtcNativeTopoMachine::area() const
{
    return _net->chipLayout().metrics().area();
}

ModelTime
OtcNativeTopoMachine::exchangeStepCost(std::size_t dist) const
{
    // Leaf cycle -> row tree -> partner cycle, plus one CIRCULATE to
    // line the partner word up within its cycle.
    (void)dist;
    return 2 * _net->treeTraversalCost() + _net->circulateCost() +
           cost().bitSerialOp();
}

ModelTime
OtcNativeTopoMachine::broadcastCost() const
{
    return _net->treeTraversalCost() + _net->circulateCost();
}

ModelTime
OtcNativeTopoMachine::reduceCost() const
{
    return _net->treeTraversalCost() + _net->streamCost();
}

SortRun
OtcNativeTopoMachine::runSort(const std::vector<std::uint64_t> &values)
{
    auto r = otc::sortOtc(*_net, values);
    return {std::move(r.sorted), r.time, 0};
}

// ---------------------------------------------------------------- mesh

MeshTopoMachine::MeshTopoMachine(const MachineSpec &spec) : Machine(spec)
{
    _pe.emplace(spec.n, cost());
}

void
MeshTopoMachine::reset()
{
    _pe.emplace(spec().n, cost());
    _grid.reset();
    if (_tracer)
        _pe->acct().setTracer(_tracer);
}

std::uint64_t
MeshTopoMachine::area() const
{
    return _pe->chipLayout().metrics().area();
}

std::uint64_t
MeshTopoMachine::steps() const
{
    return _pe->acct().steps() + (_grid ? _grid->acct().steps() : 0);
}

void
MeshTopoMachine::setTracer(trace::Tracer *tracer)
{
    _tracer = tracer;
    _pe->acct().setTracer(tracer);
    if (_grid)
        _grid->acct().setTracer(tracer);
}

// otcheck:allow(shared): lazy build of the Cannon grid on first use;
// the engine serializes all calls on one machine, reset() leaves the
// grid rebuilt-on-demand, and the reference only feeds the run*
// entry points above, so the cache never races across shards.
baselines::MeshMachine &
MeshTopoMachine::grid()
{
    if (!_grid) {
        _grid = std::make_unique<baselines::MeshMachine>(spec().n * spec().n,
                                                         cost());
        if (_tracer)
            _grid->acct().setTracer(_tracer);
    }
    return *_grid;
}

ModelTime
MeshTopoMachine::exchangeStepCost(std::size_t dist) const
{
    // The Thompson-Kung routing: distance d is d hops within a row or
    // d / side hops across rows, there and back.
    const std::size_t side = _pe->side();
    const std::size_t hops = dist < side ? dist : dist / side;
    return 2 * hops * _pe->hopCost() + cost().bitSerialOp();
}

ModelTime
MeshTopoMachine::broadcastCost() const
{
    // Corner to corner: the mesh diameter on word-parallel links.
    return 2 * _pe->side() * _pe->hopCost();
}

ModelTime
MeshTopoMachine::reduceCost() const
{
    return 2 * _pe->side() * _pe->hopCost() + cost().bitSerialOp();
}

SortRun
MeshTopoMachine::runSort(const std::vector<std::uint64_t> &values)
{
    auto r = baselines::meshSort(*_pe, values);
    return {std::move(r.sorted), r.time, 0};
}

MatMulRun
MeshTopoMachine::runMatMul(const linalg::IntMatrix &a,
                           const linalg::IntMatrix &b)
{
    baselines::MeshMachine &m = grid();
    auto r = baselines::meshMatMul(m, a, b);
    return {std::move(r.product), r.time, m.chipLayout().metrics().area()};
}

MatMulRun
MeshTopoMachine::runBoolMatMul(const linalg::BoolMatrix &a,
                               const linalg::BoolMatrix &b)
{
    baselines::MeshMachine &m = grid();
    auto r = baselines::meshBoolMatMul(m, a, b);
    return {std::move(r.product), r.time, m.chipLayout().metrics().area()};
}

CcRun
MeshTopoMachine::runConnectedComponents(const graph::Graph &g)
{
    baselines::MeshMachine &m = grid();
    auto r = baselines::meshConnectedComponents(m, g);
    return {std::move(r.labels), r.time, m.chipLayout().metrics().area()};
}

// ----------------------------------------------------------------- psn

PsnTopoMachine::PsnTopoMachine(const MachineSpec &spec) : Machine(spec)
{
    _m.emplace(spec.n, cost());
}

void
PsnTopoMachine::reset()
{
    _m.emplace(spec().n, cost());
    if (_tracer)
        _m->acct().setTracer(_tracer);
}

std::uint64_t
PsnTopoMachine::area() const
{
    return _m->chipLayout().metrics().area();
}

void
PsnTopoMachine::setTracer(trace::Tracer *tracer)
{
    _tracer = tracer;
    _m->acct().setTracer(tracer);
}

ModelTime
PsnTopoMachine::exchangeStepCost(std::size_t dist) const
{
    // Stone's realization: shuffle until the distance bit reaches the
    // LSB (log N shuffles in the worst case), then exchange.
    (void)dist;
    return _m->addressBits() * _m->shuffleStepCost() +
           _m->exchangeStepCost();
}

ModelTime
PsnTopoMachine::broadcastCost() const
{
    // Recursive doubling over the shuffle-exchange pair.
    return _m->addressBits() *
           (_m->shuffleStepCost() + _m->exchangeStepCost());
}

ModelTime
PsnTopoMachine::reduceCost() const
{
    return broadcastCost();
}

SortRun
PsnTopoMachine::runSort(const std::vector<std::uint64_t> &values)
{
    auto r = baselines::psnSort(*_m, values);
    return {std::move(r.sorted), r.time, 0};
}

// ----------------------------------------------------------------- ccc

CccTopoMachine::CccTopoMachine(const MachineSpec &spec) : Machine(spec)
{
    _m.emplace(spec.n, cost());
}

void
CccTopoMachine::reset()
{
    _m.emplace(spec().n, cost());
    if (_tracer)
        _m->acct().setTracer(_tracer);
}

std::uint64_t
CccTopoMachine::area() const
{
    return _m->chipLayout().metrics().area();
}

void
CccTopoMachine::setTracer(trace::Tracer *tracer)
{
    _tracer = tracer;
    _m->acct().setTracer(tracer);
}

ModelTime
CccTopoMachine::exchangeStepCost(std::size_t dist) const
{
    // One DESCEND step: a cube wire plus a cycle rotation.
    (void)dist;
    return _m->cubeStepCost() + _m->cycleStepCost();
}

ModelTime
CccTopoMachine::broadcastCost() const
{
    return _m->dims() * (_m->cubeStepCost() + _m->cycleStepCost());
}

ModelTime
CccTopoMachine::reduceCost() const
{
    return broadcastCost();
}

SortRun
CccTopoMachine::runSort(const std::vector<std::uint64_t> &values)
{
    auto r = baselines::cccSort(*_m, values);
    return {std::move(r.sorted), r.time, 0};
}

// ---------------------------------------------------------------- tree

TreeTopoMachine::TreeTopoMachine(const MachineSpec &spec) : Machine(spec)
{
    _m.emplace(spec.n, cost());
}

void
TreeTopoMachine::reset()
{
    _m.emplace(spec().n, cost());
    if (_tracer)
        _m->acct().setTracer(_tracer);
}

std::uint64_t
TreeTopoMachine::area() const
{
    return _m->chipArea();
}

void
TreeTopoMachine::setTracer(trace::Tracer *tracer)
{
    _tracer = tracer;
    _m->acct().setTracer(tracer);
}

ModelTime
TreeTopoMachine::exchangeStepCost(std::size_t dist) const
{
    // Every exchange serializes through the one root: leaf -> root ->
    // leaf, whatever the distance.
    (void)dist;
    return 2 * _m->traversalCost() + cost().bitSerialOp();
}

ModelTime
TreeTopoMachine::broadcastCost() const
{
    return _m->traversalCost();
}

ModelTime
TreeTopoMachine::reduceCost() const
{
    return _m->combineCost();
}

SortRun
TreeTopoMachine::runSort(const std::vector<std::uint64_t> &values)
{
    SortRun r;
    const ModelTime t0 = now();
    r.sorted = _m->extractMinSort(values);
    r.time = now() - t0;
    return r;
}

// ----------------------------------------------------------------- hex

HexTopoMachine::HexTopoMachine(const MachineSpec &spec) : Machine(spec)
{
    _m.emplace(spec.n, cost());
}

void
HexTopoMachine::reset()
{
    _m.emplace(spec().n, cost());
    if (_tracer)
        _m->acct().setTracer(_tracer);
}

std::uint64_t
HexTopoMachine::area() const
{
    return _m->chipArea();
}

void
HexTopoMachine::setTracer(trace::Tracer *tracer)
{
    _tracer = tracer;
    _m->acct().setTracer(tracer);
}

ModelTime
HexTopoMachine::exchangeStepCost(std::size_t dist) const
{
    // Nearest-neighbour routing on the N x N cell rhombus.
    const std::size_t side = _m->n();
    const std::size_t hops = dist < side ? dist : dist / side;
    return 2 * hops * _m->beatCost() + cost().bitSerialOp();
}

ModelTime
HexTopoMachine::broadcastCost() const
{
    return 2 * _m->n() * _m->beatCost();
}

ModelTime
HexTopoMachine::reduceCost() const
{
    return 2 * _m->n() * _m->beatCost() + cost().bitSerialOp();
}

MatMulRun
HexTopoMachine::runMatMul(const linalg::IntMatrix &a,
                          const linalg::IntMatrix &b)
{
    MatMulRun r;
    const ModelTime t0 = now();
    r.product = _m->matMul(a, b);
    r.time = now() - t0;
    return r;
}

MatMulRun
HexTopoMachine::runBoolMatMul(const linalg::BoolMatrix &a,
                              const linalg::BoolMatrix &b)
{
    MatMulRun r;
    const ModelTime t0 = now();
    auto p = _m->boolMatMul(a, b);
    r.time = now() - t0;
    r.product = linalg::IntMatrix(p.rows(), p.cols(), 0);
    for (std::size_t i = 0; i < p.rows(); ++i)
        for (std::size_t j = 0; j < p.cols(); ++j)
            r.product(i, j) = p(i, j) ? 1 : 0;
    return r;
}

} // namespace ot::topo

/**
 * @file
 * The Mesh-of-Trees NoC, plain and with diametrical links (D2D-MoT).
 *
 * A K x K node grid (K the smallest power of two with K^2 >= N) whose
 * rows and columns are each spanned by a complete binary tree — the
 * same skeleton as the paper's OTN, used here as a routing network: a
 * packet from (r1, c1) to (r2, c2) rides the row tree of r1 to column
 * c2, then the column tree of c2 to row r2.  A tree hop crosses the
 * tree's *root* exactly when source and destination leaves lie in
 * opposite halves, and the roots are the network's hot spot.
 *
 * The D2D ("diametrical 2D") variant, following arXiv:1212.2874, adds
 * a direct link from every node (i, j) to its diametrical opposite
 * (K-1-i, K-1-j).  Traffic whose row *and* column both cross halves
 * takes the diametrical link first and then two half-local tree
 * rides, eliminating both root crossings.  The root-bandwidth tracer
 * test drives the same traffic through both variants and asserts the
 * D2D root word count strictly lower.
 *
 * Routing emits one traced span per packet with `words` = root
 * crossings, so trace::analyze() reports root bandwidth directly.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "layout/otn_layout.hh"
#include "sim/chain_engine.hh"
#include "sim/stats.hh"
#include "sim/time_accountant.hh"
#include "topo/machine.hh"
#include "trace/tracer.hh"
#include "vlsi/delay.hh"

namespace ot::topo {

/** MoT NoC over N nodes ("mot"); diametrical links make "d2d-mot". */
class MotNocMachine : public Machine
{
  public:
    MotNocMachine(const MachineSpec &spec, bool diametrical);

    /** Grid side K (power of two, K^2 >= n). */
    std::size_t side() const { return _k; }
    bool diametrical() const { return _diametrical; }

    void reset() override;
    std::uint64_t area() const override;
    std::uint64_t steps() const override { return _acct.steps(); }
    ModelTime now() const override { return _acct.now(); }
    void charge(ModelTime dt) override { _engine.charge(dt); }
    void setTracer(trace::Tracer *tracer) override
    {
        _acct.setTracer(tracer);
        _engine.setTracer(tracer);
    }

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

    /** One route's price under the machine's delay model. */
    struct Route
    {
        ModelTime time = 0;
        /** Tree roots the packet crosses (0, 1 or 2). */
        unsigned rootCrossings = 0;
        /** Took the diametrical link. */
        bool diametricalHop = false;
    };

    /** Price the route src -> dst (node indices in [0, n)). */
    Route routeCost(std::size_t src, std::size_t dst) const;

    /**
     * Route one packet per (src, dst) pair, charging each route and
     * emitting a traced "route" span whose `words` field carries the
     * route's root crossings.  Returns the summed model time.
     */
    ModelTime
    runTraffic(const std::vector<std::pair<std::size_t, std::size_t>> &pairs);

    /** Root crossings accumulated by runTraffic since reset(). */
    std::uint64_t rootWords() const { return _rootWords; }

  private:
    /** Tree-route cost between leaves a and b of one K-leaf tree. */
    ModelTime treeRoute(std::size_t a, std::size_t b) const;

    /** Do a and b lie in opposite halves (the route crosses the root)? */
    bool crossesRoot(std::size_t a, std::size_t b) const;

    std::size_t _k;
    bool _diametrical;
    layout::OtnLayout _layout;
    std::uint64_t _rootWords = 0;
    sim::TimeAccountant _acct;
    sim::StatSet _stats;
    sim::ChainEngine _engine;
};

} // namespace ot::topo

#include "topo/registry.hh"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "otn/mst.hh"
#include "otn/shortest_paths.hh"
#include "topo/adapters.hh"
#include "topo/fat_tree.hh"
#include "topo/mot_noc.hh"
#include "vlsi/bitmath.hh"

namespace ot::topo {

namespace {

template <class M>
std::unique_ptr<Machine>
buildSimple(const MachineSpec &spec)
{
    return std::make_unique<M>(spec);
}

std::unique_ptr<Machine>
buildMot(const MachineSpec &spec)
{
    return std::make_unique<MotNocMachine>(spec, /*diametrical=*/false);
}

std::unique_ptr<Machine>
buildD2dMot(const MachineSpec &spec)
{
    return std::make_unique<MotNocMachine>(spec, /*diametrical=*/true);
}

void
registerBuiltins(Registry &reg)
{
    reg.add({"otn", "(N x N) orthogonal trees network (the paper's machine)",
             buildSimple<OtnTopoMachine>});
    reg.add({"otc", "orthogonal tree cycles, native streaming (SORT-OTC)",
             buildSimple<OtcNativeTopoMachine>});
    reg.add({"otc-emu", "OTC-emulated OTN (Section V-A)",
             buildSimple<OtcEmulatedTopoMachine>});
    reg.add({"mesh", "sqrt(N) x sqrt(N) mesh (Thompson-Kung, Cannon)",
             buildSimple<MeshTopoMachine>});
    reg.add({"psn", "perfect shuffle network (Stone)",
             buildSimple<PsnTopoMachine>});
    reg.add({"ccc", "cube-connected cycles (Preparata-Vuillemin)",
             buildSimple<CccTopoMachine>});
    reg.add({"tree", "single binary tree (the root-bottleneck ablation)",
             buildSimple<TreeTopoMachine>});
    reg.add({"hex", "hexagonal systolic array (Kung-Leiserson)",
             buildSimple<HexTopoMachine>});
    reg.add({"fattree", "two-layer fat-tree from switch ports (Solnushkin)",
             buildSimple<FatTreeMachine>});
    reg.add({"mot", "mesh-of-trees NoC (row + column trees)", buildMot});
    reg.add({"d2d-mot", "MoT NoC with diametrical links (arXiv:1212.2874)",
             buildD2dMot});
}

} // namespace

void
Registry::add(TopoInfo info)
{
    auto [it, fresh] = _topos.try_emplace(info.name, std::move(info));
    (void)it;
    if (!fresh) {
        std::fprintf(stderr,
                     "topo: duplicate topology registration '%s'\n",
                     it->first.c_str());
        std::abort();
    }
}

const TopoInfo *
Registry::find(const std::string &name) const
{
    auto it = _topos.find(name);
    return it == _topos.end() ? nullptr : &it->second;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(_topos.size());
    for (const auto &[name, info] : _topos)
        out.push_back(name);
    return out;
}

std::unique_ptr<Machine>
Registry::build(const MachineSpec &spec) const
{
    const TopoInfo *info = find(spec.topo);
    assert(info && "topo: unknown topology name");
    return info->build(spec);
}

Registry &
registry()
{
    static Registry reg = [] {
        Registry r;
        registerBuiltins(r);
        return r;
    }();
    return reg;
}

bool
isNetName(const std::string &name)
{
    return registry().find(name) != nullptr;
}

std::string
netNamesSummary()
{
    std::string out;
    for (const std::string &name : registry().names()) {
        if (!out.empty())
            out += "|";
        out += name;
    }
    return out;
}

vlsi::WordFormat
wordFormatFor(Algo algo, std::size_t n)
{
    switch (algo) {
      case Algo::MatMul:
        // Entries in [0, 9]: row-product sums reach n * 81.
        return vlsi::WordFormat(vlsi::logCeilAtLeast1(n * 81 + 1) + 2);
      case Algo::Mst:
        return otn::mstWordFormat(n, n * n);
      case Algo::ShortestPaths:
        return otn::pathWordFormat(n, n * n);
      case Algo::Sort:
      case Algo::BoolMatMul:
      case Algo::ConnectedComponents:
        break;
    }
    return vlsi::WordFormat::forProblemSize(n);
}

MachineSpec
resolveSpec(const std::string &net, Algo algo, std::size_t n,
            vlsi::DelayModel model, bool scaled)
{
    assert(isNetName(net) && "topo: unknown net name");
    const unsigned logn = vlsi::logCeilAtLeast1(n);
    MachineSpec spec;
    spec.n = n;
    spec.model = model;
    spec.scaled = scaled;
    spec.wordBits = wordFormatFor(algo, n).bits();
    if (net == "otc") {
        if (algo == Algo::Sort) {
            // SORT-OTC runs natively on the streaming machine.
            spec.topo = "otc";
            spec.cycleLen = logn;
        } else if (algo == Algo::BoolMatMul) {
            // The Table II big-OTC: cycles of log^2 N one-bit BPs.
            spec.topo = "otc-emu";
            spec.cycleLen = logn * logn;
        } else {
            // Section VI-B: the OTN algorithms on the emulated machine.
            spec.topo = "otc-emu";
            spec.cycleLen = logn;
        }
    } else if (net == "otc-emu") {
        spec.topo = "otc-emu";
        spec.cycleLen = algo == Algo::BoolMatMul ? logn * logn : logn;
    } else {
        spec.topo = net;
        spec.cycleLen = 0;
    }
    return spec;
}

} // namespace ot::topo

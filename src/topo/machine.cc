/**
 * @file
 * Generic algorithm fallbacks over the primitive accounting hooks.
 *
 * Every implementation below charges model time *only* through the
 * machine's exchange/broadcast/reduce primitives and the cost model's
 * bit-serial operation costs, so a new topology gets the whole
 * algorithm vocabulary for free the moment it can price those three
 * primitives.  The functional results are computed host-side (the
 * machines model time, not data movement), deterministically:
 *
 *  - sort:  Batcher's bitonic network, one exchangeStepCost(d) per
 *           parallel compare-exchange sweep (log^2 N sweeps);
 *  - matmul: N broadcast rounds (row of A per round), one
 *           multiply-accumulate per node per round;
 *  - cc:    min-label propagation to fixpoint, one reduce + one
 *           broadcast per round (labels converge to the smallest
 *           vertex id of the component, the reference convention);
 *  - mst:   Boruvka phases — with distinct weights the forest is the
 *           unique MSF, so the edge set equals Kruskal's;
 *  - sssp:  Bellman-Ford rounds to fixpoint.
 */

#include "topo/machine.hh"

#include <algorithm>
#include <cassert>
#include <tuple>
#include <utility>

#include "vlsi/bitmath.hh"

namespace ot::topo {

std::string
toString(const MachineSpec &spec)
{
    std::string out = spec.topo + ":n=" + std::to_string(spec.n);
    if (spec.cycleLen)
        out += ":l=" + std::to_string(spec.cycleLen);
    out += ":" + shortName(spec.model);
    out += ":w=" + std::to_string(spec.wordBits);
    if (spec.scaled)
        out += ":scaled";
    return out;
}

SortRun
Machine::runSort(const std::vector<std::uint64_t> &values)
{
    const std::size_t m = values.size();
    assert(vlsi::isPow2(m) && "generic sort: size must be a power of two");

    SortRun r;
    r.sorted = values;
    const ModelTime t0 = now();

    // Batcher's bitonic network: each (k, j) pass is one parallel
    // sweep exchanging all pairs (i, i xor j) — one machine step.
    for (std::size_t k = 2; k <= m; k <<= 1) {
        for (std::size_t j = k >> 1; j > 0; j >>= 1) {
            for (std::size_t i = 0; i < m; ++i) {
                const std::size_t partner = i ^ j;
                if (partner <= i)
                    continue;
                const bool ascending = (i & k) == 0;
                if ((r.sorted[i] > r.sorted[partner]) == ascending)
                    std::swap(r.sorted[i], r.sorted[partner]);
            }
            charge(exchangeStepCost(j));
        }
    }
    r.time = now() - t0;
    return r;
}

MatMulRun
Machine::runMatMul(const linalg::IntMatrix &a, const linalg::IntMatrix &b)
{
    const std::size_t m = a.rows();
    assert(b.rows() == m && a.cols() == m && b.cols() == m &&
           "generic matmul: square operands only");

    MatMulRun r;
    r.product = linalg::IntMatrix(m, m, 0);
    const ModelTime t0 = now();

    // Round k streams operand slice k to every node (one broadcast)
    // and accumulates c(i, j) += a(i, k) * b(k, j) everywhere.
    for (std::size_t k = 0; k < m; ++k) {
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < m; ++j)
                r.product(i, j) += a(i, k) * b(k, j);
        charge(broadcastCost() + cost().bitSerialMultiply() +
               cost().bitSerialOp());
    }
    r.time = now() - t0;
    return r;
}

MatMulRun
Machine::runBoolMatMul(const linalg::BoolMatrix &a, const linalg::BoolMatrix &b)
{
    const std::size_t m = a.rows();
    assert(b.rows() == m && a.cols() == m && b.cols() == m &&
           "generic boolmm: square operands only");

    MatMulRun r;
    r.product = linalg::IntMatrix(m, m, 0);
    const ModelTime t0 = now();

    // Same broadcast rounds as the integer product; the per-node work
    // is a single-gate AND/OR, priced as one bit-serial op.
    for (std::size_t k = 0; k < m; ++k) {
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < m; ++j)
                if (a(i, k) && b(k, j))
                    r.product(i, j) = 1;
        charge(broadcastCost() + cost().bitSerialOp());
    }
    r.time = now() - t0;
    return r;
}

CcRun
Machine::runConnectedComponents(const graph::Graph &g)
{
    const std::size_t m = g.vertices();
    CcRun r;
    r.labels.resize(m);
    for (std::size_t v = 0; v < m; ++v)
        r.labels[v] = v;
    const ModelTime t0 = now();

    // Min-label propagation: every round each vertex min-reduces its
    // neighbours' labels (one combining traversal) and the survivors
    // are redistributed (one broadcast).  Converges within the
    // diameter to label[v] = smallest vertex of v's component.
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<std::size_t> next = r.labels;
        for (std::size_t u = 0; u < m; ++u)
            for (std::size_t v = u + 1; v < m; ++v)
                if (g.hasEdge(u, v)) {
                    if (r.labels[v] < next[u])
                        next[u] = r.labels[v];
                    if (r.labels[u] < next[v])
                        next[v] = r.labels[u];
                }
        changed = next != r.labels;
        r.labels = std::move(next);
        charge(reduceCost() + broadcastCost() + cost().bitSerialOp());
    }
    r.time = now() - t0;
    return r;
}

MstRun
Machine::runMst(const graph::WeightedGraph &g)
{
    const std::size_t m = g.vertices();
    std::vector<std::size_t> comp(m);
    for (std::size_t v = 0; v < m; ++v)
        comp[v] = v;
    MstRun r;
    const ModelTime t0 = now();

    // Boruvka: each phase every component min-reduces its cheapest
    // outgoing edge (two combining traversals: per-vertex candidates,
    // then per-component minimum) and merged labels are rebroadcast.
    // Distinct weights make the chosen forest the unique MSF.
    bool merged = true;
    while (merged) {
        merged = false;
        // comp -> (w, u, v) of the cheapest outgoing edge.
        std::vector<bool> has(m, false);
        std::vector<graph::Edge> best(m);
        for (std::size_t u = 0; u < m; ++u)
            for (std::size_t v = u + 1; v < m; ++v) {
                if (!g.hasEdge(u, v) || comp[u] == comp[v])
                    continue;
                const std::uint64_t w = g.weight(u, v);
                for (std::size_t c : {comp[u], comp[v]}) {
                    if (!has[c] || w < best[c].w) {
                        has[c] = true;
                        best[c] = {u, v, w};
                    }
                }
            }
        charge(2 * reduceCost() + broadcastCost() + cost().bitSerialOp());
        for (std::size_t c = 0; c < m; ++c) {
            if (!has[c])
                continue;
            const graph::Edge &e = best[c];
            if (comp[e.u] == comp[e.v])
                continue; // merged earlier this phase
            r.edges.push_back(e);
            const std::size_t from = comp[e.v], to = comp[e.u];
            for (std::size_t v = 0; v < m; ++v)
                if (comp[v] == from)
                    comp[v] = to;
            merged = true;
        }
    }
    std::sort(r.edges.begin(), r.edges.end(),
              [](const graph::Edge &a, const graph::Edge &b) {
                  return std::tie(a.w, a.u, a.v) < std::tie(b.w, b.u, b.v);
              });
    r.time = now() - t0;
    return r;
}

SsspRun
Machine::runShortestPaths(const graph::WeightedGraph &g, std::size_t src)
{
    const std::size_t m = g.vertices();
    assert(src < m && "generic sssp: source out of range");
    SsspRun r;
    r.dist.assign(m, graph::kUnreachable);
    r.dist[src] = 0;
    const ModelTime t0 = now();

    // Bellman-Ford to fixpoint: one relaxation wave per round (a
    // broadcast of the frontier and a per-vertex min-reduce), at most
    // N - 1 rounds plus the convergence check.
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<std::uint64_t> next = r.dist;
        for (std::size_t u = 0; u < m; ++u) {
            if (r.dist[u] == graph::kUnreachable)
                continue;
            for (std::size_t v = 0; v < m; ++v) {
                if (!g.hasEdge(u, v))
                    continue;
                const std::uint64_t cand = r.dist[u] + g.weight(u, v);
                if (cand < next[v])
                    next[v] = cand;
            }
        }
        changed = next != r.dist;
        r.dist = std::move(next);
        charge(broadcastCost() + reduceCost() + cost().bitSerialOp());
    }
    r.time = now() - t0;
    return r;
}

} // namespace ot::topo

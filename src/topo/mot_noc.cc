#include "topo/mot_noc.hh"

#include <array>
#include <cassert>

#include "vlsi/bitmath.hh"

namespace ot::topo {

namespace {

/** Smallest power of two K with K * K >= n. */
std::size_t
gridSide(std::size_t n)
{
    std::size_t k = 1;
    while (k * k < n)
        k <<= 1;
    return k;
}

} // namespace

MotNocMachine::MotNocMachine(const MachineSpec &spec, bool diametrical)
    : Machine(spec), _k(gridSide(spec.n)), _diametrical(diametrical),
      _layout(_k, spec.wordBits),
      _engine(_acct, _stats, /*host_threads=*/1)
{
}

void
MotNocMachine::reset()
{
    _acct.reset();
    _rootWords = 0;
}

std::uint64_t
MotNocMachine::area() const
{
    std::uint64_t a = _layout.metrics().area();
    if (_diametrical) {
        // K^2/2 diametrical links; summing their Manhattan lengths
        // (|K-1-2i| + |K-1-2j| pitches over all pairs) gives a total
        // extra wire of K^3/2 pitches, at unit track width.
        a += _k * _k * _k * _layout.pitch() / 2;
    }
    return a;
}

bool
MotNocMachine::crossesRoot(std::size_t a, std::size_t b) const
{
    return _k > 1 && (a ^ b) >= _k / 2;
}

ModelTime
MotNocMachine::treeRoute(std::size_t a, std::size_t b) const
{
    if (a == b)
        return 0;
    // Climb to the lowest common ancestor (level h above the leaves)
    // and descend: the same h edge lengths twice, leaf end first.
    const unsigned h = vlsi::ilog2Floor(a ^ b) + 1;
    std::vector<vlsi::WireLength> edges;
    edges.reserve(2 * h);
    for (unsigned lvl = 1; lvl <= h; ++lvl)
        edges.push_back(_layout.tree().edgeLength(lvl));
    for (unsigned lvl = h; lvl >= 1; --lvl)
        edges.push_back(_layout.tree().edgeLength(lvl));
    return cost().wordAlongPath(edges);
}

MotNocMachine::Route
MotNocMachine::routeCost(std::size_t src, std::size_t dst) const
{
    assert(src < n() && dst < n() && "mot: node index out of range");
    Route r;
    if (src == dst)
        return r;

    std::size_t r1 = src / _k, c1 = src % _k;
    const std::size_t r2 = dst / _k, c2 = dst % _k;

    if (_diametrical && crossesRoot(r1, r2) && crossesRoot(c1, c2)) {
        // Both axes would cross a root: take the diametrical link to
        // (K-1-r1, K-1-c1), which lands in the destination's quadrant,
        // then ride the trees half-locally.
        const std::uint64_t dx =
            r1 * 2 >= _k ? r1 * 2 - (_k - 1) : (_k - 1) - r1 * 2;
        const std::uint64_t dy =
            c1 * 2 >= _k ? c1 * 2 - (_k - 1) : (_k - 1) - c1 * 2;
        const std::array<vlsi::WireLength, 1> hop = {
            (dx + dy) * _layout.pitch()};
        r.time += cost().wordAlongPath(hop);
        r.diametricalHop = true;
        r1 = _k - 1 - r1;
        c1 = _k - 1 - c1;
    }

    // Row tree of r1 carries the packet to column c2, then the column
    // tree of c2 to row r2; each ride crosses its root iff the
    // endpoints lie in opposite halves.
    if (c1 != c2) {
        r.time += treeRoute(c1, c2);
        if (crossesRoot(c1, c2))
            ++r.rootCrossings;
    }
    if (r1 != r2) {
        r.time += treeRoute(r1, r2);
        if (crossesRoot(r1, r2))
            ++r.rootCrossings;
    }
    return r;
}

ModelTime
MotNocMachine::runTraffic(
    const std::vector<std::pair<std::size_t, std::size_t>> &pairs)
{
    ModelTime total = 0;
    for (const auto &[src, dst] : pairs) {
        const Route ro = routeCost(src, dst);
        sim::ChainEngine::SpanArgs args;
        args.words = ro.rootCrossings;
        _engine.traceSpan("mot", "route", ro.time, args);
        _engine.charge(ro.time);
        // otcheck:allow(shared): per-run traffic accumulator — the
        // driver owns its machine exclusively and reset() clears it,
        // so the post-build write never crosses a shard boundary.
        _rootWords += ro.rootCrossings;
        total += ro.time;
    }
    return total;
}

ModelTime
MotNocMachine::exchangeStepCost(std::size_t dist) const
{
    assert(dist >= 1 && dist < n() && "mot: exchange distance out of range");
    // The sweep's pairs (i, i xor dist) all route at the same tree
    // distance; price the representative (0, dist).  A power-of-two
    // distance moves along one axis only, so the diametrical links
    // never engage here — they pay off on two-axis traffic.
    return routeCost(0, dist).time + cost().bitSerialOp();
}

ModelTime
MotNocMachine::broadcastCost() const
{
    // Row tree to the root and down (all columns), then every column
    // tree: two full traversals.
    return 2 * cost().wordAlongPath(_layout.tree().pathEdges());
}

ModelTime
MotNocMachine::reduceCost() const
{
    return 2 * cost().reducePath(_layout.tree().pathEdges());
}

} // namespace ot::topo

#include "topo/fat_tree.hh"

#include <array>
#include <cassert>

#include "vlsi/bitmath.hh"

namespace ot::topo {

unsigned
FatTreeMachine::defaultPorts(std::size_t n)
{
    unsigned p = 4;
    while (static_cast<std::size_t>(p) * p / 2 < n)
        p += 2;
    return p;
}

FatTreeMachine::FatTreeMachine(const MachineSpec &spec, unsigned ports)
    : Machine(spec), _ports(ports ? ports : defaultPorts(spec.n))
{
    assert(_ports % 2 == 0 && "fattree: switch port count must be even");
    assert(_ports >= 4 && "fattree: switch port count must be >= 4");
    assert(static_cast<std::size_t>(_ports) * _ports / 2 >= spec.n &&
           "fattree: port count too small for the node count");

    _edgeSwitches = vlsi::ceilDiv(spec.n, _ports / 2);

    // One edge block: the switch above its p/2 nodes, each node a
    // Theta(word)-wide cell.
    const vlsi::WireLength cell = 2 * cost().word().bits() + 2;
    _blockPitch = (_ports / 2) * cell;
    // Worst-case run to a spine switch: half the chip width across,
    // one block up.
    _spineWire = _edgeSwitches * _blockPitch / 2 + _blockPitch;
}

std::uint64_t
FatTreeMachine::area() const
{
    // Node row + edge-switch row + the spine row and its horizontal
    // wiring channel (one track per edge switch).
    const std::uint64_t width = _edgeSwitches * _blockPitch;
    const std::uint64_t height = 3 * _blockPitch + _edgeSwitches;
    return width * height;
}

ModelTime
FatTreeMachine::exchangeStepCost(std::size_t dist) const
{
    assert(dist >= 1 && "fattree: exchange distance must be >= 1");
    const std::size_t down = _ports / 2;
    // The sweep pairs (i, i xor dist); it stays inside edge switches
    // only when blocks are aligned multiples of the pair span.
    const bool local = dist < down && down % (2 * dist) == 0;
    if (local) {
        const std::array<vlsi::WireLength, 2> path = {_blockPitch,
                                                      _blockPitch};
        return cost().wordAlongPath(path) + cost().bitSerialOp();
    }
    const std::array<vlsi::WireLength, 4> path = {_blockPitch, _spineWire,
                                                  _spineWire, _blockPitch};
    return cost().wordAlongPath(path) + cost().bitSerialOp();
}

ModelTime
FatTreeMachine::broadcastCost() const
{
    // Node -> edge switch -> spine -> every edge switch -> nodes.
    const std::array<vlsi::WireLength, 4> path = {_blockPitch, _spineWire,
                                                  _spineWire, _blockPitch};
    return cost().wordAlongPath(path);
}

ModelTime
FatTreeMachine::reduceCost() const
{
    // Combining in the switches on the way up, fan-out on the way
    // down: a reduce traversal over the same worst-case path.
    const std::array<vlsi::WireLength, 4> path = {_blockPitch, _spineWire,
                                                  _spineWire, _blockPitch};
    return cost().reducePath(path);
}

} // namespace ot::topo

/**
 * @file
 * The topology plugin interface: one Machine per network family.
 *
 * Section VII of the paper compares the orthogonal-tree machines
 * against the mesh, shuffle-exchange and cube-connected-cycles under
 * one cost model; this layer turns that comparison into a plugin
 * contract.  A topo::Machine is built from a MachineSpec (topology
 * name, problem size, cycle length, delay model, word width, tree
 * scaling — exactly the workload engine's cache key), accounts model
 * time deterministically, and serves the full algorithm vocabulary of
 * algo.hh.
 *
 * Topologies describe themselves through three *primitive accounting
 * hooks* — the cost of a distance-d compare-exchange step, of a
 * broadcast, and of a combining reduction — and the base class
 * provides generic algorithm implementations on top of them (bitonic
 * sort, broadcast matmul, min-label components, Boruvka MST,
 * Bellman-Ford paths).  A machine with a native algorithm (SORT-OTC's
 * streaming sort, Cannon on the mesh, the hex array's systolic
 * product) overrides the corresponding run*() and keeps its bespoke
 * model times; everything else inherits the generic fallbacks, so
 * *every* registered algorithm runs on *every* registered topology —
 * the property the cross-topology conformance suite asserts.
 *
 * All results carry the run's model time; verification against the
 * sequential references stays in the workload engine.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hh"
#include "graph/reference_algorithms.hh"
#include "linalg/matrix.hh"
#include "topo/algo.hh"
#include "trace/tracer.hh"
#include "vlsi/cost_model.hh"
#include "vlsi/delay.hh"
#include "vlsi/word.hh"

namespace ot::topo {

using vlsi::ModelTime;

/**
 * Build-from-spec parameters of one machine: the topology name plus
 * everything the cost rules depend on.  Ordered so it can key the
 * workload engine's NetworkCache directly — two equal specs are
 * served by one machine object.
 */
struct MachineSpec
{
    /** Registry name of the concrete machine ("otn", "fattree", ...). */
    std::string topo = "otn";
    /** Problem size N (power of two, >= 2). */
    std::size_t n = 0;
    /** Cycle length L of the OTC forms; 0 elsewhere. */
    unsigned cycleLen = 0;
    vlsi::DelayModel model = vlsi::DelayModel::Logarithmic;
    unsigned wordBits = 0;
    /** Thompson's scaled trees (constant-delay tree edges). */
    bool scaled = false;

    auto operator<=>(const MachineSpec &other) const = default;

    /** The cost model the spec pins down. */
    vlsi::CostModel
    cost() const
    {
        return {model, vlsi::WordFormat(wordBits), scaled};
    }
};

/** Human-readable spec, e.g. "otn:n=32:log:w=10" (for reports). */
std::string toString(const MachineSpec &spec);

/**
 * Results of the algorithm entry points.  `area` is an optional
 * per-run chip-area override (0 = use the machine's area()): machines
 * whose natural chip for an algorithm differs from the build-time one
 * (the Table II Boolean-product OTC, the mesh's N^2-processor Cannon
 * grid) report the chip the run actually modeled.
 */
struct SortRun
{
    std::vector<std::uint64_t> sorted;
    ModelTime time = 0;
    std::uint64_t area = 0;
};

struct MatMulRun
{
    linalg::IntMatrix product;
    ModelTime time = 0;
    std::uint64_t area = 0;
};

struct CcRun
{
    std::vector<std::size_t> labels;
    ModelTime time = 0;
    std::uint64_t area = 0;
};

struct MstRun
{
    /** Forest edges sorted by (w, u, v), as graph::kruskalMsf. */
    std::vector<graph::Edge> edges;
    ModelTime time = 0;
    std::uint64_t area = 0;
};

struct SsspRun
{
    /** dist[v] from the source (graph::kUnreachable if none). */
    std::vector<std::uint64_t> dist;
    ModelTime time = 0;
    std::uint64_t area = 0;
};

/** One pluggable network topology under the VLSI cost model.
 *
 *  Machines are cached by workload::NetworkCache and handed out to
 *  BatchEngine shards; once construction completes they may only
 *  change through the virtual API below, which the engine serializes
 *  per machine.  otcheck enforces this (rule `shared`; the marker is
 *  inherited, so every registered plugin is covered). */
// otcheck:shared(post-build)
class Machine
{
  public:
    explicit Machine(const MachineSpec &spec)
        : _spec(spec), _cost(spec.cost())
    {
    }

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;
    virtual ~Machine() = default;

    const MachineSpec &spec() const { return _spec; }
    std::size_t n() const { return _spec.n; }
    const vlsi::CostModel &cost() const { return _cost; }

    /** Bring a (possibly reused) machine back to its built state. */
    virtual void reset() = 0;

    /** Chip area in lambda^2 (the A of the AT^2 comparisons). */
    virtual std::uint64_t area() const = 0;

    /** Accounting hook: parallel steps charged since construction. */
    virtual std::uint64_t steps() const = 0;

    /** Current model time of the machine's clock. */
    virtual ModelTime now() const = 0;

    /** Charge one parallel step of duration dt. */
    virtual void charge(ModelTime dt) = 0;

    /** Attach a model-time tracer (nullptr detaches). */
    virtual void setTracer(trace::Tracer *tracer) { (void)tracer; }

    // ---- Per-primitive accounting hooks.  These three durations are
    // the topology's microarchitecture description: how long one
    // parallel compare-exchange sweep at linear distance `dist`, one
    // one-to-all broadcast, and one combining (MIN/SUM) reduction take
    // under the machine's delay model and geometry.

    /** Parallel compare-exchange of all pairs (i, i xor dist). */
    virtual ModelTime exchangeStepCost(std::size_t dist) const = 0;

    /** One word from one node to all N nodes. */
    virtual ModelTime broadcastCost() const = 0;

    /** Combining reduction (MIN/SUM) of one word per node. */
    virtual ModelTime reduceCost() const = 0;

    // ---- Algorithm entry points.  Defaults are the generic
    // primitive-based implementations (machine.cc); machines override
    // where a native algorithm exists.

    /** Sort values.size() = N keys. */
    virtual SortRun runSort(const std::vector<std::uint64_t> &values);

    /** C = A * B for N x N integer matrices. */
    virtual MatMulRun runMatMul(const linalg::IntMatrix &a,
                                const linalg::IntMatrix &b);

    /** Boolean (AND/OR) product; entries of the result are 0/1. */
    virtual MatMulRun runBoolMatMul(const linalg::BoolMatrix &a,
                                    const linalg::BoolMatrix &b);

    /** Component labels in canonical (smallest-vertex) form. */
    virtual CcRun runConnectedComponents(const graph::Graph &g);

    /** Minimum spanning forest (edge weights must be distinct). */
    virtual MstRun runMst(const graph::WeightedGraph &g);

    /** Single-source shortest paths from src. */
    virtual SsspRun runShortestPaths(const graph::WeightedGraph &g,
                                     std::size_t src);

  private:
    MachineSpec _spec;
    vlsi::CostModel _cost;
};

} // namespace ot::topo

/**
 * @file
 * The algorithm vocabulary shared by every topology.
 *
 * The paper's comparison tables race a fixed set of problems across
 * machine families; the topo layer pins that set down as an enum so
 * the workload engine, the scenario mixes and the conformance suite
 * all agree on what "every registered algorithm" means.  The spellings
 * here ("sort", "cc", ...) are the CLI/JSON tokens of the workload
 * spec grammar.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "vlsi/delay.hh"

namespace ot::topo {

/** The algorithms a topology must serve (the Tables I-III rows). */
enum class Algo : std::uint8_t {
    Sort,                ///< sorting N keys
    MatMul,              ///< integer matrix product
    BoolMatMul,          ///< Boolean matrix product (Table II)
    ConnectedComponents, ///< CONNECT (Table III)
    Mst,                 ///< minimum spanning tree (Table III)
    ShortestPaths,       ///< single-source shortest paths
};

inline constexpr std::size_t kAlgoCount = 6;

/** Every algorithm, in enum order (for "every algo x every topo"). */
constexpr std::array<Algo, kAlgoCount>
allAlgos()
{
    return {Algo::Sort,
            Algo::MatMul,
            Algo::BoolMatMul,
            Algo::ConnectedComponents,
            Algo::Mst,
            Algo::ShortestPaths};
}

/** Short spelling used by the CLI/JSON forms ("sort", "cc", ...). */
std::string toString(Algo algo);

/** Parse the short spelling; false on an unknown name. */
bool algoFromString(const std::string &s, Algo &out);

/** Short delay-model spelling: "log", "const" or "linear". */
std::string shortName(vlsi::DelayModel model);

} // namespace ot::topo

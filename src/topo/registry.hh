/**
 * @file
 * The topology registry: name -> machine factory.
 *
 * Every topo::Machine family registers once, under a unique name; the
 * workload engine's NetworkCache, the `algo:net:n` spec tokens, the
 * scenario mixes and the conformance suites all resolve topologies
 * through this table, so a new network plugs into all of them by
 * registering here and nowhere else.  Registration of a duplicate
 * name aborts (two factories behind one cache key would be a silent
 * correctness bug); building an unknown name asserts — CLI front ends
 * validate names with isNetName() first and report the known set.
 *
 * resolveSpec() is the one place the user-facing net names ("otc" is
 * a *family*: SORT-OTC runs natively, everything else on the emulated
 * OTN, Section V-A/VI-B) map to concrete machines, cycle lengths and
 * word formats — the same resolution the pre-plugin engine hardwired,
 * so cache keys and model times are unchanged for the otn/otc
 * workloads.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "topo/machine.hh"
#include "vlsi/delay.hh"
#include "vlsi/word.hh"

namespace ot::topo {

/** One registered topology. */
struct TopoInfo
{
    /** Registry key and spec-token spelling ("fattree", "mot", ...). */
    std::string name;
    /** One-line description for `otsim topo --list`. */
    std::string summary;
    /** Build a machine for a spec (spec.topo must equal name). */
    std::unique_ptr<Machine> (*build)(const MachineSpec &spec);
};

/** The name -> factory table (iteration is name-ordered). */
class Registry
{
  public:
    /** Register a topology; a duplicate name aborts. */
    void add(TopoInfo info);

    /** Look up a name; nullptr when unknown. */
    const TopoInfo *find(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** All registrations, name-ordered. */
    const std::map<std::string, TopoInfo> &table() const { return _topos; }

    /** Build the machine for spec.topo (unknown names assert). */
    std::unique_ptr<Machine> build(const MachineSpec &spec) const;

  private:
    std::map<std::string, TopoInfo> _topos;
};

/** The process-wide registry, with the built-in topologies loaded. */
Registry &registry();

/** Is `name` a known topology (usable as a spec's net field)? */
bool isNetName(const std::string &name);

/** The known names joined with '|' (for diagnostics). */
std::string netNamesSummary();

/** The word format an algorithm's machine is built with at size n. */
vlsi::WordFormat wordFormatFor(Algo algo, std::size_t n);

/**
 * Resolve a user-facing (net, algo, n, model, scaled) instance to the
 * concrete machine spec the cache builds: the "otc" family splits
 * into the native streaming machine (sort) and the emulated OTN with
 * the algorithm's cycle length (everything else); all other names map
 * to themselves.  `net` must satisfy isNetName().
 */
MachineSpec resolveSpec(const std::string &net, Algo algo, std::size_t n,
                        vlsi::DelayModel model, bool scaled);

} // namespace ot::topo

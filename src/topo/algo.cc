#include "topo/algo.hh"

namespace ot::topo {

std::string
toString(Algo algo)
{
    switch (algo) {
      case Algo::Sort:
        return "sort";
      case Algo::MatMul:
        return "matmul";
      case Algo::BoolMatMul:
        return "boolmm";
      case Algo::ConnectedComponents:
        return "cc";
      case Algo::Mst:
        return "mst";
      case Algo::ShortestPaths:
        return "sssp";
    }
    return "?";
}

bool
algoFromString(const std::string &s, Algo &out)
{
    if (s == "sort")
        out = Algo::Sort;
    else if (s == "matmul")
        out = Algo::MatMul;
    else if (s == "boolmm")
        out = Algo::BoolMatMul;
    else if (s == "cc")
        out = Algo::ConnectedComponents;
    else if (s == "mst")
        out = Algo::Mst;
    else if (s == "sssp")
        out = Algo::ShortestPaths;
    else
        return false;
    return true;
}

std::string
shortName(vlsi::DelayModel model)
{
    switch (model) {
      case vlsi::DelayModel::Constant:
        return "const";
      case vlsi::DelayModel::Logarithmic:
        return "log";
      case vlsi::DelayModel::Linear:
        return "linear";
    }
    return "?";
}

} // namespace ot::topo

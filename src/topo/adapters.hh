/**
 * @file
 * topo::Machine adapters over the existing simulators.
 *
 * One adapter per machine family already in the tree: the plain OTN,
 * the native streaming OTC, the OTC-emulated OTN (Section V-A), and
 * the five baselines (mesh, shuffle-exchange, cube-connected cycles,
 * single tree, hex array).  Each adapter delegates to the family's
 * native algorithms where they exist — keeping the model times of the
 * pre-plugin runners bit-for-bit — and inherits the generic
 * primitive-based fallbacks for the rest, so every family serves the
 * full algorithm vocabulary.
 *
 * The orthogonal-tree adapters reset their (expensive) networks in
 * place, exactly as the workload engine used to; the baseline
 * machines are cheap (a layout plus an accountant), so their adapters
 * rebuild on reset(), which also restarts the per-run step counters.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/ccc.hh"
#include "baselines/hex_array.hh"
#include "baselines/mesh.hh"
#include "baselines/psn.hh"
#include "baselines/tree_machine.hh"
#include "graph/graph.hh"
#include "linalg/matrix.hh"
#include "otc/emulated_otn.hh"
#include "otc/network.hh"
#include "otn/network.hh"
#include "topo/machine.hh"
#include "trace/tracer.hh"

namespace ot::topo {

/** The plain (N x N) orthogonal trees network ("otn"). */
class OtnTopoMachine : public Machine
{
  public:
    explicit OtnTopoMachine(const MachineSpec &spec);

    void reset() override;
    std::uint64_t area() const override;
    std::uint64_t steps() const override { return _net->acct().steps(); }
    ModelTime now() const override { return _net->now(); }
    void charge(ModelTime dt) override { _net->charge(dt); }
    void setTracer(trace::Tracer *tracer) override
    {
        _net->setTracer(tracer);
    }

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

    SortRun runSort(const std::vector<std::uint64_t> &values) override;
    MatMulRun runMatMul(const linalg::IntMatrix &a,
                        const linalg::IntMatrix &b) override;
    MatMulRun runBoolMatMul(const linalg::BoolMatrix &a,
                            const linalg::BoolMatrix &b) override;
    CcRun runConnectedComponents(const graph::Graph &g) override;
    MstRun runMst(const graph::WeightedGraph &g) override;
    SsspRun runShortestPaths(const graph::WeightedGraph &g,
                             std::size_t src) override;

  protected:
    OtnTopoMachine(const MachineSpec &spec,
                   std::unique_ptr<otn::OrthogonalTreesNetwork> net);

    std::unique_ptr<otn::OrthogonalTreesNetwork> _net;
};

/** The OTC-emulated OTN ("otc-emu", Section V-A). */
// otcheck:allow(topo-fallback): the emulation charges OTN's per-hook
// costs by construction (Section V-A maps every OTN primitive onto
// the OTC cell grid); overriding them would fork the cost model the
// emulation is defined to share.
class OtcEmulatedTopoMachine : public OtnTopoMachine
{
  public:
    explicit OtcEmulatedTopoMachine(const MachineSpec &spec);

    std::uint64_t area() const override;

    /** The Table II replicated-block Boolean product. */
    MatMulRun runBoolMatMul(const linalg::BoolMatrix &a,
                            const linalg::BoolMatrix &b) override;

  private:
    otc::OtcEmulatedOtn *_emu; // owned by _net
};

/** The native streaming OTC ("otc", SORT-OTC). */
class OtcNativeTopoMachine : public Machine
{
  public:
    explicit OtcNativeTopoMachine(const MachineSpec &spec);

    void reset() override;
    std::uint64_t area() const override;
    std::uint64_t steps() const override { return _net->acct().steps(); }
    ModelTime now() const override { return _net->now(); }
    void charge(ModelTime dt) override { _net->charge(dt); }
    void setTracer(trace::Tracer *tracer) override
    {
        _net->setTracer(tracer);
    }

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

    SortRun runSort(const std::vector<std::uint64_t> &values) override;

  private:
    std::unique_ptr<otc::OtcNetwork> _net;
};

/** The sqrt(N) x sqrt(N) mesh ("mesh", Thompson-Kung + Cannon). */
class MeshTopoMachine : public Machine
{
  public:
    explicit MeshTopoMachine(const MachineSpec &spec);

    void reset() override;
    std::uint64_t area() const override;
    std::uint64_t steps() const override;
    ModelTime now() const override { return _pe->now(); }
    void charge(ModelTime dt) override { _pe->charge(dt); }
    void setTracer(trace::Tracer *tracer) override;

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

    SortRun runSort(const std::vector<std::uint64_t> &values) override;
    MatMulRun runMatMul(const linalg::IntMatrix &a,
                        const linalg::IntMatrix &b) override;
    MatMulRun runBoolMatMul(const linalg::BoolMatrix &a,
                            const linalg::BoolMatrix &b) override;
    CcRun runConnectedComponents(const graph::Graph &g) override;

  private:
    /** The N^2-processor Cannon grid, built on first matrix/CC run. */
    baselines::MeshMachine &grid();

    std::optional<baselines::MeshMachine> _pe;
    std::unique_ptr<baselines::MeshMachine> _grid;
    trace::Tracer *_tracer = nullptr;
};

/** Stone's perfect shuffle network ("psn"). */
class PsnTopoMachine : public Machine
{
  public:
    explicit PsnTopoMachine(const MachineSpec &spec);

    void reset() override;
    std::uint64_t area() const override;
    std::uint64_t steps() const override { return _m->acct().steps(); }
    ModelTime now() const override { return _m->now(); }
    void charge(ModelTime dt) override { _m->charge(dt); }
    void setTracer(trace::Tracer *tracer) override;

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

    SortRun runSort(const std::vector<std::uint64_t> &values) override;

  private:
    std::optional<baselines::PsnMachine> _m;
    trace::Tracer *_tracer = nullptr;
};

/** The cube-connected cycles ("ccc", Preparata-Vuillemin). */
class CccTopoMachine : public Machine
{
  public:
    explicit CccTopoMachine(const MachineSpec &spec);

    void reset() override;
    std::uint64_t area() const override;
    std::uint64_t steps() const override { return _m->acct().steps(); }
    ModelTime now() const override { return _m->now(); }
    void charge(ModelTime dt) override { _m->charge(dt); }
    void setTracer(trace::Tracer *tracer) override;

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

    SortRun runSort(const std::vector<std::uint64_t> &values) override;

  private:
    std::optional<baselines::CccMachine> _m;
    trace::Tracer *_tracer = nullptr;
};

/** The single-tree machine ("tree", the root-bottleneck ablation). */
class TreeTopoMachine : public Machine
{
  public:
    explicit TreeTopoMachine(const MachineSpec &spec);

    void reset() override;
    std::uint64_t area() const override;
    std::uint64_t steps() const override { return _m->acct().steps(); }
    ModelTime now() const override { return _m->now(); }
    void charge(ModelTime dt) override { _m->charge(dt); }
    void setTracer(trace::Tracer *tracer) override;

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

    SortRun runSort(const std::vector<std::uint64_t> &values) override;

  private:
    std::optional<baselines::TreeMachine> _m;
    trace::Tracer *_tracer = nullptr;
};

/** The hexagonal systolic array ("hex", Kung-Leiserson). */
class HexTopoMachine : public Machine
{
  public:
    explicit HexTopoMachine(const MachineSpec &spec);

    void reset() override;
    std::uint64_t area() const override;
    std::uint64_t steps() const override { return _m->acct().steps(); }
    ModelTime now() const override { return _m->now(); }
    void charge(ModelTime dt) override { _m->charge(dt); }
    void setTracer(trace::Tracer *tracer) override;

    ModelTime exchangeStepCost(std::size_t dist) const override;
    ModelTime broadcastCost() const override;
    ModelTime reduceCost() const override;

    MatMulRun runMatMul(const linalg::IntMatrix &a,
                        const linalg::IntMatrix &b) override;
    MatMulRun runBoolMatMul(const linalg::BoolMatrix &a,
                            const linalg::BoolMatrix &b) override;

  private:
    std::optional<baselines::HexArray> _m;
    trace::Tracer *_tracer = nullptr;
};

} // namespace ot::topo

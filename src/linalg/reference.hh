/**
 * @file
 * Sequential reference algorithms the network simulations are verified
 * against: classical matrix products, Boolean (AND/OR) products,
 * vector-matrix products, the naive DFT and a radix-2 FFT.
 */

#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hh"

namespace ot::linalg {

/** Classical O(N^3) integer matrix product C = A * B. */
IntMatrix matMul(const IntMatrix &a, const IntMatrix &b);

/** Vector-matrix product c = a * B (a is a row vector). */
std::vector<std::uint64_t> vecMatMul(const std::vector<std::uint64_t> &a,
                                     const IntMatrix &b);

/** Boolean matrix product over (AND, OR) — Section VII-B. */
BoolMatrix boolMatMul(const BoolMatrix &a, const BoolMatrix &b);

/** Matrix "closure" A^k under Boolean product (k >= 0; A^0 = I). */
BoolMatrix boolMatPow(const BoolMatrix &a, unsigned k);

using Complex = std::complex<double>;

/** Naive O(N^2) discrete Fourier transform (the specification). */
std::vector<Complex> dftNaive(const std::vector<Complex> &x);

/** Iterative radix-2 Cooley-Tukey FFT (N a power of two). */
std::vector<Complex> fft(const std::vector<Complex> &x);

/** Max |a[i] - b[i]| between two complex vectors. */
double maxAbsDiff(const std::vector<Complex> &a,
                  const std::vector<Complex> &b);

} // namespace ot::linalg

/**
 * @file
 * Dense row-major matrix used by the matrix/graph workloads.
 *
 * The networks operate on small integer or Boolean matrices (the
 * paper's words are O(log N) bits); this type is the host-side
 * container for inputs, expected outputs and adjacency matrices.
 */

#pragma once

#include <cassert>
#include <cstddef>
#include <ostream>
#include <vector>

namespace ot::linalg {

/** Dense rows x cols matrix of T, row-major storage. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    Matrix(std::size_t rows, std::size_t cols, T init = T{})
        : _rows(rows), _cols(cols), _data(rows * cols, init)
    {}

    /** Build from nested initializer data (rows of equal length). */
    static Matrix
    fromRows(const std::vector<std::vector<T>> &rows)
    {
        if (rows.empty())
            return Matrix();
        Matrix m(rows.size(), rows[0].size());
        for (std::size_t i = 0; i < rows.size(); ++i) {
            assert(rows[i].size() == m._cols);
            for (std::size_t j = 0; j < m._cols; ++j)
                m(i, j) = rows[i][j];
        }
        return m;
    }

    /** The n x n identity (requires T constructible from 0/1). */
    static Matrix
    identity(std::size_t n)
    {
        Matrix m(n, n, T{0});
        for (std::size_t i = 0; i < n; ++i)
            m(i, i) = T{1};
        return m;
    }

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }

    T &
    operator()(std::size_t i, std::size_t j)
    {
        assert(i < _rows && j < _cols);
        return _data[i * _cols + j];
    }

    const T &
    operator()(std::size_t i, std::size_t j) const
    {
        assert(i < _rows && j < _cols);
        return _data[i * _cols + j];
    }

    /** Row i as a copy (convenient for feeding input ports). */
    std::vector<T>
    row(std::size_t i) const
    {
        assert(i < _rows);
        return {_data.begin() + static_cast<long>(i * _cols),
                _data.begin() + static_cast<long>((i + 1) * _cols)};
    }

    /** Column j as a copy. */
    std::vector<T>
    col(std::size_t j) const
    {
        assert(j < _cols);
        std::vector<T> out(_rows);
        for (std::size_t i = 0; i < _rows; ++i)
            out[i] = (*this)(i, j);
        return out;
    }

    bool operator==(const Matrix &other) const = default;

    /** Transposed copy. */
    Matrix
    transposed() const
    {
        Matrix t(_cols, _rows);
        for (std::size_t i = 0; i < _rows; ++i)
            for (std::size_t j = 0; j < _cols; ++j)
                t(j, i) = (*this)(i, j);
        return t;
    }

  private:
    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::vector<T> _data;
};

template <typename T>
std::ostream &
operator<<(std::ostream &os, const Matrix<T> &m)
{
    for (std::size_t i = 0; i < m.rows(); ++i) {
        for (std::size_t j = 0; j < m.cols(); ++j)
            os << (j ? " " : "") << m(i, j);
        os << "\n";
    }
    return os;
}

/** Integer matrices as used by the machines (words are uint64). */
using IntMatrix = Matrix<std::uint64_t>;

/** Boolean matrices (Section VII-B); stored as bytes for addressing. */
using BoolMatrix = Matrix<std::uint8_t>;

} // namespace ot::linalg

#include "linalg/reference.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "vlsi/bitmath.hh"

namespace ot::linalg {

IntMatrix
matMul(const IntMatrix &a, const IntMatrix &b)
{
    assert(a.cols() == b.rows());
    IntMatrix c(a.rows(), b.cols(), 0);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t k = 0; k < a.cols(); ++k)
            for (std::size_t j = 0; j < b.cols(); ++j)
                c(i, j) += a(i, k) * b(k, j);
    return c;
}

std::vector<std::uint64_t>
vecMatMul(const std::vector<std::uint64_t> &a, const IntMatrix &b)
{
    assert(a.size() == b.rows());
    std::vector<std::uint64_t> c(b.cols(), 0);
    for (std::size_t k = 0; k < a.size(); ++k)
        for (std::size_t j = 0; j < b.cols(); ++j)
            c[j] += a[k] * b(k, j);
    return c;
}

BoolMatrix
boolMatMul(const BoolMatrix &a, const BoolMatrix &b)
{
    assert(a.cols() == b.rows());
    BoolMatrix c(a.rows(), b.cols(), 0);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t k = 0; k < a.cols(); ++k) {
            if (!a(i, k))
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                if (b(k, j))
                    c(i, j) = 1;
        }
    return c;
}

BoolMatrix
boolMatPow(const BoolMatrix &a, unsigned k)
{
    assert(a.rows() == a.cols());
    BoolMatrix result = BoolMatrix::identity(a.rows());
    BoolMatrix base = a;
    while (k) {
        if (k & 1)
            result = boolMatMul(result, base);
        base = boolMatMul(base, base);
        k >>= 1;
    }
    return result;
}

std::vector<Complex>
dftNaive(const std::vector<Complex> &x)
{
    const std::size_t n = x.size();
    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex sum = 0;
        for (std::size_t t = 0; t < n; ++t) {
            double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
            sum += x[t] * Complex(std::cos(angle), std::sin(angle));
        }
        out[k] = sum;
    }
    return out;
}

std::vector<Complex>
fft(const std::vector<Complex> &x)
{
    const std::size_t n = x.size();
    assert(vlsi::isPow2(n));
    const unsigned logn = vlsi::ilog2Ceil(n);

    std::vector<Complex> a(n);
    for (std::size_t i = 0; i < n; ++i)
        a[vlsi::reverseBits(i, logn)] = x[i];

    for (std::size_t len = 2; len <= n; len <<= 1) {
        double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
        Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w = 1;
            for (std::size_t j = 0; j < len / 2; ++j) {
                Complex u = a[i + j];
                Complex v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    return a;
}

double
maxAbsDiff(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    assert(a.size() == b.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

} // namespace ot::linalg

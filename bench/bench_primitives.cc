/**
 * @file
 * Experiment E11 — primitive-level micro-costs and the design-choice
 * ablations.
 *
 *  - Section II-B vs VII-D: ROOTTOLEAF costs O(log^2 N) under
 *    Thompson's model and O(log N) under constant delay.
 *  - Thompson's scaling [31]: tree ops drop to O(log N) under the
 *    logarithmic model too.
 *  - OTC cycle-length ablation (Section VI-B): pushing L from log N to
 *    log^2 N with one-bit BPs shrinks the Boolean-matmul chip without
 *    changing the O(log^2 N) stream time.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("E11: tree-primitive cost vs N across delay models");
    analysis::TextTable t({"N", "log-delay", "constant", "linear",
                           "scaled [31]", "log^2 N", "log N"});
    std::vector<double> ns, t_log, t_const, t_scaled;
    for (std::size_t n : {16, 64, 256, 1024, 4096, 16384}) {
        double dn = static_cast<double>(n);
        double l = std::log2(dn);
        auto mk = [&](vlsi::DelayModel m, bool scaled = false) {
            vlsi::CostModel cm(m, vlsi::WordFormat::forProblemSize(n),
                               scaled);
            layout::OtnLayout lay(n, cm.word().bits());
            return static_cast<double>(
                cm.wordAlongPath(lay.tree().pathEdges()));
        };
        double c_log = mk(vlsi::DelayModel::Logarithmic);
        double c_const = mk(vlsi::DelayModel::Constant);
        double c_lin = mk(vlsi::DelayModel::Linear);
        double c_scaled = mk(vlsi::DelayModel::Logarithmic, true);
        ns.push_back(dn);
        t_log.push_back(c_log);
        t_const.push_back(c_const);
        t_scaled.push_back(c_scaled);
        t.addRow({std::to_string(n), analysis::formatQuantity(c_log),
                  analysis::formatQuantity(c_const),
                  analysis::formatQuantity(c_lin),
                  analysis::formatQuantity(c_scaled),
                  analysis::formatQuantity(l * l),
                  analysis::formatQuantity(l)});
    }
    std::printf("%s", t.str().c_str());

    auto f_log = analysis::fitPowerLawInLogN(ns, t_log);
    auto f_const = analysis::fitPowerLawInLogN(ns, t_const);
    auto f_scaled = analysis::fitPowerLawInLogN(ns, t_scaled);
    std::printf("\nROOTTOLEAF ~ %s under Thompson (paper: log^2 N), "
                "~ %s constant-delay (paper: log N), "
                "~ %s with scaling [31] (paper: log N)\n",
                analysis::formatExponent("logN", f_log.exponent).c_str(),
                analysis::formatExponent("logN", f_const.exponent).c_str(),
                analysis::formatExponent("logN",
                                         f_scaled.exponent).c_str());

    section("E11: scaled-trees ablation on whole algorithms (N = 1024)");
    {
        std::size_t n = 1024;
        auto v = randomValues(n, 5);
        auto plain = defaultCostModel(n);
        auto scaled = defaultCostModel(n, vlsi::DelayModel::Logarithmic,
                                       /*scaled_trees=*/true);
        auto t_plain = otn::sortOtn(v, plain).time;
        auto t_scaledv = otn::sortOtn(v, scaled).time;
        std::printf("  SORT-OTN: plain %s vs scaled %s (%.2fx; paper: "
                    "Theta(log N) = %.0f)\n",
                    analysis::formatQuantity(
                        static_cast<double>(t_plain)).c_str(),
                    analysis::formatQuantity(
                        static_cast<double>(t_scaledv)).c_str(),
                    static_cast<double>(t_plain) /
                        static_cast<double>(t_scaledv),
                    std::log2(static_cast<double>(n)));
    }

    section("E11: OTC cycle-length ablation (Boolean matmul chips)");
    analysis::TextTable t2({"N", "L = log N area", "L = log^2 N area",
                            "saving"});
    for (std::size_t n : {64, 256, 1024}) {
        unsigned l = vlsi::logCeilAtLeast1(n);
        // Standard machine: N^2/log N^2 cycles per side, length log N.
        layout::OtcLayout std_chip(vlsi::ceilDiv(n * n, l), l, 1);
        // Section VI-B: length log^2 N with compact one-bit BPs.
        layout::OtcLayout big_chip(vlsi::ceilDiv(n * n, l * l), l * l, 1,
                                   /*compact_bps=*/true);
        double a1 = static_cast<double>(std_chip.metrics().area());
        double a2 = static_cast<double>(big_chip.metrics().area());
        t2.addRow({std::to_string(n), analysis::formatQuantity(a1),
                   analysis::formatQuantity(a2),
                   analysis::formatRatio(a1 / a2)});
    }
    std::printf("%s", t2.str().c_str());
    std::printf("\n(the paper: the longer cycles cut the Boolean-matmul "
                "chip to O(N^4/log^2 N) without changing time)\n");
}

void
BM_TreeTraversalCost(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto cost = ot::defaultCostModel(n);
    layout::OtnLayout lay(n, cost.word().bits());
    for (auto _ : state) {
        auto c = cost.wordAlongPath(lay.tree().pathEdges());
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_TreeTraversalCost)->Arg(1024)->Arg(65536);

void
BM_GatherAtIndex(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto cost = ot::defaultCostModel(n);
    otn::OrthogonalTreesNetwork net(n, cost);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            net.reg(otn::Reg::X, i, j) = (i + 1) % n;
            net.reg(otn::Reg::R, i, j) = j;
        }
    for (auto _ : state) {
        otn::gatherAtIndex(net, otn::Reg::X, otn::Reg::R, otn::Reg::Y,
                           otn::Reg::F);
        benchmark::DoNotOptimize(net.reg(otn::Reg::Y, 0, 0));
    }
}
BENCHMARK(BM_GatherAtIndex)->Arg(64)->Arg(256);

} // namespace

OT_BENCH_MAIN(printTables)

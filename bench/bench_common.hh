/**
 * @file
 * Shared helpers for the per-table/figure benchmark binaries.
 *
 * Every bench binary does three things:
 *   1. prints the paper's asymptotic table (via analysis::paperFormula)
 *      for reference,
 *   2. sweeps N on the simulated machines, printing measured model
 *      time / layout area / AT^2 and the fitted growth exponents, so
 *      the *shape* of each row can be checked against the paper, and
 *   3. registers Google-Benchmark wall-clock benchmarks for the
 *      simulation kernels themselves (host performance).
 */

#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "orthotree/orthotree.hh"

namespace ot::bench {

/** Random values < n for an n-element sorting problem. */
inline std::vector<std::uint64_t>
randomValues(std::size_t n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng.uniform(0, n - 1);
    return v;
}

/**
 * Attach one run's (deterministic) model time as a counter so every
 * benchmark row shows simulated cycles next to host real time.  The
 * value is identical every iteration — the simulation is deterministic
 * — so last-write wins is exact, not an average.
 */
inline void
reportModelTime(benchmark::State &state, vlsi::ModelTime t)
{
    state.counters["model_time"] =
        benchmark::Counter(static_cast<double>(t));
}

/** Print a titled section. */
inline void
section(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Print the paper's asymptotic table for one problem/model. */
inline void
printPaperTable(analysis::Problem problem, vlsi::DelayModel model,
                const std::vector<analysis::Network> &nets, double n)
{
    analysis::TextTable t({"network", "area", "time", "area*time^2"});
    for (auto net : nets) {
        auto a = analysis::paperFormula(net, problem, model, n);
        t.addRow({analysis::toString(net), analysis::formatQuantity(a.area),
                  analysis::formatQuantity(a.time),
                  analysis::formatQuantity(a.at2())});
    }
    std::printf("Paper formulas (constants = 1) at N = %.0f, %s:\n%s", n,
                vlsi::toString(model).c_str(), t.str().c_str());
}

/** One measured sweep row for the tables below. */
struct MeasuredRow
{
    std::string network;
    std::vector<double> ns;
    std::vector<double> times;
    double area = 0; // at the largest N
};

/**
 * Print measured rows at the largest N plus fitted growth exponents
 * (in N and in log N) for each network's time.
 */
inline void
printMeasured(const std::vector<MeasuredRow> &rows)
{
    analysis::TextTable t({"network", "area@maxN", "time@maxN",
                           "area*time^2", "time fit (N)",
                           "time fit (logN)"});
    for (const auto &r : rows) {
        auto fit_n = analysis::fitPowerLaw(r.ns, r.times);
        auto fit_l = analysis::fitPowerLawInLogN(r.ns, r.times);
        double tmax = r.times.back();
        t.addRow({r.network, analysis::formatQuantity(r.area),
                  analysis::formatQuantity(tmax),
                  analysis::formatQuantity(r.area * tmax * tmax),
                  analysis::formatExponent("N", fit_n.exponent),
                  analysis::formatExponent("logN", fit_l.exponent)});
    }
    std::printf("Measured (model time units, layout lambda^2):\n%s",
                t.str().c_str());
}

/** Standard main: print tables first, then run google-benchmark. */
#define OT_BENCH_MAIN(PRINT_FN)                                            \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        PRINT_FN();                                                        \
        ::benchmark::Initialize(&argc, argv);                              \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))          \
            return 1;                                                      \
        ::benchmark::RunSpecifiedBenchmarks();                             \
        ::benchmark::Shutdown();                                           \
        return 0;                                                          \
    }

} // namespace ot::bench

/**
 * @file
 * Experiment E9 — Section IV: bitonic sort and DFT on a
 * (sqrt N x sqrt N)-OTN, one element per base processor.
 *
 * Paper claims: time O(sqrt(N) log N) on O(N log^2 N) area, with the
 * closing caveat that "an O(N^1/2) time bound can be obtained on a
 * mesh of equal area".  Our strict bit-serial accounting charges the
 * serialized word streams through the subtree roots, giving
 * Theta(sqrt(N) log^2 N) — one log above the paper (whose tighter
 * schedule lives in the thesis [21]); the dominant sqrt(N) growth and
 * the OTN-loses-to-the-mesh-here conclusion both reproduce.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("E9 / Section IV: bitonic sort on a (K x K)-OTN, N = K^2");

    analysis::TextTable t({"N", "K", "stages", "strict time",
                           "streamed [21]", "mesh time", "sqrt(N)*log N",
                           "strict/mesh"});
    MeasuredRow bito{"OTN bitonic (strict)", {}, {}, 0};
    MeasuredRow bito_s{"OTN bitonic (streamed)", {}, {}, 0};
    MeasuredRow mesh{"mesh bitonic", {}, {}, 0};
    for (std::size_t k : {8, 16, 32, 64}) {
        std::size_t n = k * k;
        auto v = randomValues(n, 60 + k);
        auto cost = defaultCostModel(n);

        otn::OrthogonalTreesNetwork net(k, cost);
        auto r = otn::bitonicSortOtn(net, v);
        std::vector<std::uint64_t> expect = v;
        std::sort(expect.begin(), expect.end());
        if (r.sorted != expect)
            std::abort();

        otn::OrthogonalTreesNetwork net2(k, cost);
        auto rs = otn::bitonicSortOtn(net2, v,
                                      otn::CompexSchedule::Streamed);
        if (rs.sorted != expect)
            std::abort();

        auto rm = baselines::meshSort(v, cost);

        double dn = static_cast<double>(n);
        double l = std::log2(dn);
        bito.ns.push_back(dn);
        bito.times.push_back(static_cast<double>(r.time));
        bito.area =
            static_cast<double>(net.chipLayout().metrics().area());
        bito_s.ns.push_back(dn);
        bito_s.times.push_back(static_cast<double>(rs.time));
        bito_s.area = bito.area;
        mesh.ns.push_back(dn);
        mesh.times.push_back(static_cast<double>(rm.time));
        baselines::MeshMachine mm(n, cost);
        mesh.area =
            static_cast<double>(mm.chipLayout().metrics().area());

        t.addRow({std::to_string(n), std::to_string(k),
                  std::to_string(r.stages),
                  analysis::formatQuantity(static_cast<double>(r.time)),
                  analysis::formatQuantity(static_cast<double>(rs.time)),
                  analysis::formatQuantity(static_cast<double>(rm.time)),
                  analysis::formatQuantity(std::sqrt(dn) * l),
                  analysis::formatRatio(static_cast<double>(r.time) /
                                        static_cast<double>(rm.time))});
    }
    std::printf("%s", t.str().c_str());

    auto fit = analysis::fitPowerLaw(bito.ns, bito.times);
    auto fit_s = analysis::fitPowerLaw(bito_s.ns, bito_s.times);
    std::printf("\nOTN bitonic time ~ %s strict vs ~ %s with the [21] "
                "streamed schedule (paper: sqrt(N) log N ~ N^0.5 x "
                "polylog)\n",
                analysis::formatExponent("N", fit.exponent).c_str(),
                analysis::formatExponent("N", fit_s.exponent).c_str());
    std::printf("Section IV-A's remark reproduces: the mesh of equal "
                "area is faster here (strict/mesh > 1 throughout).\n");

    section("E9 / Section IV-B: DFT on the same machine");
    analysis::TextTable t2({"N", "K", "stages", "DFT time",
                            "max |err| vs naive DFT"});
    MeasuredRow dft{"OTN DFT", {}, {}, 0};
    for (std::size_t k : {8, 16, 32}) {
        std::size_t n = k * k;
        sim::Rng rng(70 + k);
        std::vector<linalg::Complex> x(n);
        for (auto &c : x)
            c = linalg::Complex(rng.uniformReal() - 0.5,
                                rng.uniformReal() - 0.5);
        auto cost = defaultCostModel(n);
        otn::OrthogonalTreesNetwork net(k, cost);
        auto r = otn::dftOtn(net, x);
        double err = linalg::maxAbsDiff(r.spectrum, linalg::dftNaive(x));
        if (err > 1e-6)
            std::abort();
        dft.ns.push_back(static_cast<double>(n));
        dft.times.push_back(static_cast<double>(r.time));
        char errbuf[32];
        std::snprintf(errbuf, sizeof(errbuf), "%.2e", err);
        t2.addRow({std::to_string(n), std::to_string(k),
                   std::to_string(r.stages),
                   analysis::formatQuantity(static_cast<double>(r.time)),
                   errbuf});
    }
    std::printf("%s", t2.str().c_str());
    auto dfit = analysis::fitPowerLaw(dft.ns, dft.times);
    std::printf("\nDFT time ~ %s (same communication skeleton as the "
                "bitonic merge, Section IV-B)\n",
                analysis::formatExponent("N", dfit.exponent).c_str());
}

void
BM_BitonicSortOtn(benchmark::State &state)
{
    std::size_t k = static_cast<std::size_t>(state.range(0));
    std::size_t n = k * k;
    auto v = randomValues(n, 8);
    auto cost = defaultCostModel(n);
    otn::OrthogonalTreesNetwork net(k, cost);
    for (auto _ : state) {
        auto r = otn::bitonicSortOtn(net, v);
        benchmark::DoNotOptimize(r.sorted.data());
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_BitonicSortOtn)->Arg(16)->Arg(32)->Arg(64);

void
BM_DftOtn(benchmark::State &state)
{
    std::size_t k = static_cast<std::size_t>(state.range(0));
    std::size_t n = k * k;
    sim::Rng rng(3);
    std::vector<linalg::Complex> x(n);
    for (auto &c : x)
        c = linalg::Complex(rng.uniformReal(), 0.0);
    auto cost = defaultCostModel(n);
    otn::OrthogonalTreesNetwork net(k, cost);
    for (auto _ : state) {
        auto r = otn::dftOtn(net, x);
        benchmark::DoNotOptimize(r.spectrum.data());
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_DftOtn)->Arg(16)->Arg(32);

} // namespace

OT_BENCH_MAIN(printTables)

/**
 * @file
 * Experiment E1 — Table I: sorting N numbers under Thompson's
 * logarithmic-delay model on the mesh, PSN, CCC, OTN and OTC.
 *
 * Regenerates the table's rows from measurement: model time from the
 * simulated machines, area from the concrete/analytic layouts, and
 * fitted growth exponents so the asymptotic classes can be compared
 * with the paper's (mesh ~ sqrt(N); PSN/CCC ~ log^3 N; OTN/OTC ~
 * log^2 N; OTC area ~ N^2 vs OTN's N^2 log^2 N).
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

// The OTN holds 12 registers per base processor (n^2 of them), so the
// unified sweep stops at 1024; the O(n)-memory baselines sweep further
// below.
const std::vector<std::size_t> kSweep{64, 128, 256, 512, 1024};

void
printTables()
{
    section("E1 / Table I: sorting, logarithmic (Thompson) delay model");
    printPaperTable(analysis::Problem::Sorting,
                    vlsi::DelayModel::Logarithmic,
                    {analysis::Network::Mesh, analysis::Network::Psn,
                     analysis::Network::Ccc, analysis::Network::Otn,
                     analysis::Network::Otc},
                    static_cast<double>(kSweep.back()));

    MeasuredRow mesh{"mesh", {}, {}, 0};
    MeasuredRow psn{"PSN", {}, {}, 0};
    MeasuredRow ccc{"CCC", {}, {}, 0};
    MeasuredRow otn{"OTN", {}, {}, 0};
    MeasuredRow otc{"OTC", {}, {}, 0};
    MeasuredRow fattree{"fat-tree", {}, {}, 0};
    MeasuredRow d2dmot{"D2D-MoT", {}, {}, 0};

    for (std::size_t n : kSweep) {
        auto v = randomValues(n, 42 + n);
        auto cost = defaultCostModel(n);
        double dn = static_cast<double>(n);

        {
            baselines::MeshMachine m(n, cost);
            auto r = baselines::meshSort(m, v);
            mesh.ns.push_back(dn);
            mesh.times.push_back(static_cast<double>(r.time));
            mesh.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            baselines::PsnMachine m(n, cost);
            auto r = baselines::psnSort(m, v);
            psn.ns.push_back(dn);
            psn.times.push_back(static_cast<double>(r.time));
            psn.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            baselines::CccMachine m(n, cost);
            auto r = baselines::cccSort(m, v);
            ccc.ns.push_back(dn);
            ccc.times.push_back(static_cast<double>(r.time));
            ccc.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            otn::OrthogonalTreesNetwork m(n, cost);
            auto r = otn::sortOtn(m, v);
            otn.ns.push_back(dn);
            otn.times.push_back(static_cast<double>(r.time));
            otn.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            unsigned l = vlsi::logCeilAtLeast1(n);
            otc::OtcNetwork m(n / l, l, cost);
            auto r = otc::sortOtc(m, v);
            otc.ns.push_back(dn);
            otc.times.push_back(static_cast<double>(r.time));
            otc.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        // The registry-built challengers ride the same sweep: a
        // two-layer fat-tree and the MoT NoC with diametrical links.
        for (auto *row : {&fattree, &d2dmot}) {
            auto spec = topo::resolveSpec(
                row == &fattree ? "fattree" : "d2d-mot", topo::Algo::Sort,
                n, vlsi::DelayModel::Logarithmic, false);
            auto m = topo::registry().build(spec);
            auto r = m->runSort(v);
            row->ns.push_back(dn);
            row->times.push_back(static_cast<double>(r.time));
            row->area =
                static_cast<double>(r.area ? r.area : m->area());
        }
    }

    printMeasured({mesh, psn, ccc, otn, otc, fattree, d2dmot});

    // The baselines store O(N) words, so they can sweep much further;
    // the asymptotic exponents separate cleanly out here.
    MeasuredRow mesh_x{"mesh (to 64K)", {}, {}, 0};
    MeasuredRow psn_x{"PSN (to 64K)", {}, {}, 0};
    MeasuredRow ccc_x{"CCC (to 64K)", {}, {}, 0};
    for (std::size_t n : {4096, 16384, 65536}) {
        auto v = randomValues(n, 17 + n);
        auto cost = defaultCostModel(n);
        double dn = static_cast<double>(n);
        {
            baselines::MeshMachine m(n, cost);
            auto r = baselines::meshSort(m, v);
            mesh_x.ns.push_back(dn);
            mesh_x.times.push_back(static_cast<double>(r.time));
            mesh_x.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            baselines::PsnMachine m(n, cost);
            auto r = baselines::psnSort(m, v);
            psn_x.ns.push_back(dn);
            psn_x.times.push_back(static_cast<double>(r.time));
            psn_x.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            baselines::CccMachine m(n, cost);
            auto r = baselines::cccSort(m, v);
            ccc_x.ns.push_back(dn);
            ccc_x.times.push_back(static_cast<double>(r.time));
            ccc_x.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
    }
    std::printf("\nExtended baseline sweep (N = 4096...65536):\n");
    printMeasured({mesh_x, psn_x, ccc_x});

    std::printf("\nShape checks at N = %zu:\n", kSweep.back());
    std::printf("  OTN time / OTC time       = %.2f (paper: Theta(1))\n",
                otn.times.back() / otc.times.back());
    std::printf("  OTN area / OTC area       = %.1f (paper: "
                "Theta(log^2 N) = %.0f)\n",
                otn.area / otc.area,
                std::pow(std::log2(double(kSweep.back())), 2));
    std::printf("  mesh time / OTC time      = %.1f (paper: "
                "sqrt(N)/log^2 N, grows)\n",
                mesh.times.back() / otc.times.back());
    std::printf("  PSN time / OTN time       = %.2f (paper: "
                "Theta(log N))\n",
                psn.times.back() / otn.times.back());
    std::printf("  fat-tree time / OTN time  = %.2f (cross-block "
                "spine wires pay wire delay)\n",
                fattree.times.back() / otn.times.back());
    std::printf("  D2D-MoT area / OTN area   = %.3f (a NoC skeleton, "
                "not a sorter chip)\n",
                d2dmot.area / otn.area);
}

void
BM_SortOtn(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto v = randomValues(n, 7);
    auto cost = defaultCostModel(n);
    otn::OrthogonalTreesNetwork net(n, cost);
    state.SetLabel(simd::toString(net.simdBackend()));
    for (auto _ : state) {
        auto r = otn::sortOtn(net, v);
        benchmark::DoNotOptimize(r.sorted.data());
        reportModelTime(state, r.time);
    }
}
BENCHMARK(BM_SortOtn)->Arg(64)->Arg(256)->Arg(1024);

void
BM_SortOtc(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto v = randomValues(n, 7);
    auto cost = defaultCostModel(n);
    unsigned l = vlsi::logCeilAtLeast1(n);
    otc::OtcNetwork net(n / l, l, cost);
    state.SetLabel(simd::toString(net.simdBackend()));
    for (auto _ : state) {
        auto r = otc::sortOtc(net, v);
        benchmark::DoNotOptimize(r.sorted.data());
        reportModelTime(state, r.time);
    }
}
BENCHMARK(BM_SortOtc)->Arg(64)->Arg(256)->Arg(1024);

void
BM_SortMesh(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto v = randomValues(n, 7);
    auto cost = defaultCostModel(n);
    baselines::MeshMachine mesh(n, cost);
    for (auto _ : state) {
        auto r = baselines::meshSort(mesh, v);
        benchmark::DoNotOptimize(r.sorted.data());
        reportModelTime(state, r.time);
    }
}
BENCHMARK(BM_SortMesh)->Arg(64)->Arg(256)->Arg(1024);

/** Registry-built sort benchmark shared by the new topologies. */
void
sortViaRegistry(benchmark::State &state, const char *net)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto v = randomValues(n, 7);
    auto spec = topo::resolveSpec(net, topo::Algo::Sort, n,
                                  vlsi::DelayModel::Logarithmic, false);
    auto machine = topo::registry().build(spec);
    for (auto _ : state) {
        machine->reset();
        auto r = machine->runSort(v);
        benchmark::DoNotOptimize(r.sorted.data());
        reportModelTime(state, r.time);
    }
}

void
BM_SortFatTree(benchmark::State &state)
{
    sortViaRegistry(state, "fattree");
}
BENCHMARK(BM_SortFatTree)->Arg(64)->Arg(256)->Arg(1024);

void
BM_SortD2dMot(benchmark::State &state)
{
    sortViaRegistry(state, "d2d-mot");
}
BENCHMARK(BM_SortD2dMot)->Arg(64)->Arg(256)->Arg(1024);

} // namespace

OT_BENCH_MAIN(printTables)

/**
 * @file
 * Experiment E8 — minimum spanning tree (abstract / Section III):
 * O(log^4 N) time; AT^2 = O(N^2 log^9 N) on the OTC.
 *
 * Measures the Boruvka-on-OTN/OTC implementation against Kruskal for
 * correctness, fits the polylog time growth, and reports the AT^2
 * rows (OTC area carries the extra log N for the resident weight
 * matrix).
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("E8: minimum spanning tree (paper: OTC AT^2 = N^2 log^9 N)");
    printPaperTable(analysis::Problem::Mst, vlsi::DelayModel::Logarithmic,
                    {analysis::Network::Mesh, analysis::Network::Psn,
                     analysis::Network::Ccc, analysis::Network::Otn,
                     analysis::Network::Otc},
                    128.0);

    MeasuredRow otn_row{"OTN (Boruvka)", {}, {}, 0};
    MeasuredRow otc_row{"OTC (Boruvka)", {}, {}, 0};

    analysis::TextTable t({"N", "edges", "MST weight", "OTN time",
                           "OTC time", "iterations"});
    for (std::size_t n : {16, 32, 64, 128}) {
        sim::Rng rng(50 + n);
        auto g = graph::randomWeightedConnected(n, 2 * n, rng);
        auto expect = graph::kruskalMsf(g);
        vlsi::CostModel cost(vlsi::DelayModel::Logarithmic,
                             otn::mstWordFormat(n, n * n));

        otn::OrthogonalTreesNetwork net(n, cost);
        auto r_otn = otn::mstOtn(net, g);
        if (r_otn.edges != expect)
            std::abort();

        auto r_otc = otc::mstOtc(g, cost);
        if (r_otc.result.edges != expect)
            std::abort();

        double dn = static_cast<double>(n);
        otn_row.ns.push_back(dn);
        otn_row.times.push_back(static_cast<double>(r_otn.time));
        otn_row.area =
            static_cast<double>(net.chipLayout().metrics().area());
        otc_row.ns.push_back(dn);
        otc_row.times.push_back(
            static_cast<double>(r_otc.result.time));
        otc_row.area = static_cast<double>(r_otc.chip.area());

        t.addRow({std::to_string(n),
                  std::to_string(g.skeleton().edgeCount()),
                  std::to_string(r_otn.totalWeight),
                  analysis::formatQuantity(
                      static_cast<double>(r_otn.time)),
                  analysis::formatQuantity(
                      static_cast<double>(r_otc.result.time)),
                  std::to_string(r_otn.iterations)});
    }
    std::printf("%s", t.str().c_str());
    std::printf("\n");
    printMeasured({otn_row, otc_row});

    std::printf("\nShape checks:\n");
    std::printf("  time grows polylogarithmically (fit above; paper "
                "log^4 N)\n");
    std::printf("  OTN area / OTC area at N = 128: %.1f (paper: "
                "Theta(log N) after the MST area penalty)\n",
                otn_row.area / otc_row.area);
}

void
BM_MstOtn(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::Rng rng(9);
    auto g = graph::randomWeightedConnected(n, 2 * n, rng);
    vlsi::CostModel cost(vlsi::DelayModel::Logarithmic,
                         otn::mstWordFormat(n, n * n));
    otn::OrthogonalTreesNetwork net(n, cost);
    for (auto _ : state) {
        auto r = otn::mstOtn(net, g);
        benchmark::DoNotOptimize(r.totalWeight);
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_MstOtn)->Arg(16)->Arg(32)->Arg(64);

void
BM_KruskalReference(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::Rng rng(9);
    auto g = graph::randomWeightedConnected(n, 2 * n, rng);
    for (auto _ : state) {
        auto msf = graph::kruskalMsf(g);
        benchmark::DoNotOptimize(msf.data());
    }
}
BENCHMARK(BM_KruskalReference)->Arg(64)->Arg(256);

} // namespace

OT_BENCH_MAIN(printTables)

/**
 * @file
 * Experiment E10 — Section VIII point 4: pipelining problem streams
 * on the OTN.
 *
 * Paper claims: O(log N) problems in flight, a new sorted set every
 * O(log N) time units, pipelined AT^2 = O(N^2 log^4 N) — "the same as
 * the AT^2 performance of the OTC without using pipelining".
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("E10 / Section VIII: pipelined sorting streams on the OTN");

    analysis::TextTable t({"N", "problems", "first latency", "beat",
                           "total", "serial total", "speedup",
                           "per-problem AT^2"});
    for (std::size_t n : {64, 256, 1024}) {
        unsigned depth = vlsi::logCeilAtLeast1(n); // log N problems
        std::vector<std::vector<std::uint64_t>> problems;
        for (unsigned p = 0; p < depth; ++p)
            problems.push_back(randomValues(n, 80 + p));
        auto cost = defaultCostModel(n);

        otn::OrthogonalTreesNetwork net(n, cost);
        auto r = otn::sortPipelineOtn(net, problems);
        for (unsigned p = 0; p < depth; ++p) {
            auto expect = problems[p];
            std::sort(expect.begin(), expect.end());
            if (r.sorted[p] != expect)
                std::abort();
        }

        otn::OrthogonalTreesNetwork serial(n, cost);
        for (const auto &p : problems)
            otn::sortOtn(serial, p);
        double serial_total = static_cast<double>(serial.now());

        double area =
            static_cast<double>(net.chipLayout().metrics().area());
        double per_problem_time =
            static_cast<double>(r.totalTime) / depth;
        t.addRow(
            {std::to_string(n), std::to_string(depth),
             analysis::formatQuantity(
                 static_cast<double>(r.firstLatency)),
             analysis::formatQuantity(
                 static_cast<double>(r.problemInterval)),
             analysis::formatQuantity(static_cast<double>(r.totalTime)),
             analysis::formatQuantity(serial_total),
             analysis::formatRatio(serial_total /
                                   static_cast<double>(r.totalTime)),
             analysis::formatQuantity(area * per_problem_time *
                                      per_problem_time)});
    }
    std::printf("%s", t.str().c_str());

    // Pipelined OTN vs unpipelined OTC AT^2 (the paper's punchline).
    std::printf("\nPipelined-OTN per-problem AT^2 vs plain OTC AT^2 at "
                "N = 1024:\n");
    std::size_t n = 1024;
    unsigned l = vlsi::logCeilAtLeast1(n);
    auto v = randomValues(n, 99);
    auto cost = defaultCostModel(n);
    otc::OtcNetwork otc_net(n / l, l, cost);
    auto r_otc = otc::sortOtc(otc_net, v);
    double otc_at2 =
        static_cast<double>(otc_net.chipLayout().metrics().area()) *
        static_cast<double>(r_otc.time) * static_cast<double>(r_otc.time);

    std::vector<std::vector<std::uint64_t>> problems;
    for (unsigned p = 0; p < l; ++p)
        problems.push_back(randomValues(n, 300 + p));
    otn::OrthogonalTreesNetwork otn_net(n, cost);
    auto r_pipe = otn::sortPipelineOtn(otn_net, problems);
    double per_problem =
        static_cast<double>(r_pipe.totalTime) / problems.size();
    double otn_at2 =
        static_cast<double>(otn_net.chipLayout().metrics().area()) *
        per_problem * per_problem;
    std::printf("  pipelined OTN: %s   plain OTC: %s   ratio %.2f "
                "(paper: Theta(1) — both N^2 log^4 N)\n",
                analysis::formatQuantity(otn_at2).c_str(),
                analysis::formatQuantity(otc_at2).c_str(),
                otn_at2 / otc_at2);
}

void
BM_SortPipelineOtn(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    unsigned depth = vlsi::logCeilAtLeast1(n);
    std::vector<std::vector<std::uint64_t>> problems;
    for (unsigned p = 0; p < depth; ++p)
        problems.push_back(randomValues(n, p));
    auto cost = ot::defaultCostModel(n);
    otn::OrthogonalTreesNetwork net(n, cost);
    for (auto _ : state) {
        auto r = otn::sortPipelineOtn(net, problems);
        benchmark::DoNotOptimize(r.sorted.data());
        state.counters["model_time"] =
            static_cast<double>(r.totalTime);
    }
}
BENCHMARK(BM_SortPipelineOtn)->Arg(64)->Arg(256);

} // namespace

OT_BENCH_MAIN(printTables)

/**
 * @file
 * Experiment E7 — Section III-A: pipelined matrix multiplication.
 *
 * The paper's claims: the full product takes O(N log N + log^2 N)
 * total, "the first row appearing O(log^2 N) time after A_0 is input
 * and successive rows being separated by O(log N) units of time".
 * This bench measures first-row latency, the inter-row beat, the
 * pipelined total, and the speed-up over running N unpipelined
 * vector products.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

linalg::IntMatrix
randomMatrix(std::size_t n, std::uint64_t limit, std::uint64_t seed)
{
    sim::Rng rng(seed);
    linalg::IntMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.uniform(0, limit - 1);
    return m;
}

vlsi::CostModel
matCost(std::size_t n)
{
    unsigned bits = vlsi::logCeilAtLeast1(n * 49 + 1) + 2;
    return {vlsi::DelayModel::Logarithmic, vlsi::WordFormat(bits)};
}

void
printTables()
{
    section("E7 / Section III-A: pipelined matrix multiplication");

    analysis::TextTable t({"N", "first row", "row beat", "total",
                           "unpipelined", "speedup", "log^2 N", "N log N"});
    std::vector<double> ns, totals;
    for (std::size_t n : {8, 16, 32, 64}) {
        auto a = randomMatrix(n, 7, 100 + n);
        auto b = randomMatrix(n, 7, 200 + n);
        auto cost = matCost(n);

        otn::OrthogonalTreesNetwork net(n, cost);
        auto r = otn::matMulPipelined(net, a, b);
        if (r.product != linalg::matMul(a, b))
            std::abort();

        // Unpipelined: one full vector product per row (no overlap).
        otn::OrthogonalTreesNetwork net2(n, cost);
        net2.loadBase(otn::Reg::B, b);
        vlsi::ModelTime t0 = net2.now();
        for (std::size_t i = 0; i < n; ++i)
            otn::vecMatMulOtn(net2, a.row(i));
        double unpiped = static_cast<double>(net2.now() - t0);

        double dn = static_cast<double>(n);
        double l = std::log2(dn);
        ns.push_back(dn);
        totals.push_back(static_cast<double>(r.time));
        t.addRow({std::to_string(n),
                  analysis::formatQuantity(
                      static_cast<double>(r.firstRowLatency)),
                  analysis::formatQuantity(
                      static_cast<double>(r.rowInterval)),
                  analysis::formatQuantity(static_cast<double>(r.time)),
                  analysis::formatQuantity(unpiped),
                  analysis::formatRatio(
                      unpiped / static_cast<double>(r.time)),
                  analysis::formatQuantity(l * l),
                  analysis::formatQuantity(dn * l)});
    }
    std::printf("%s", t.str().c_str());

    auto fit = analysis::fitPowerLaw(ns, totals);
    std::printf("\npipelined total ~ %s (paper: N log N + log^2 N, "
                "near-linear; R^2 = %.4f)\n",
                analysis::formatExponent("N", fit.exponent).c_str(),
                fit.r2);
    std::printf("row beat equals the word separation Theta(log N); "
                "speedup approaches log N as N grows.\n");
}

void
BM_MatMulPipelined(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto a = randomMatrix(n, 7, 1);
    auto b = randomMatrix(n, 7, 2);
    auto cost = matCost(n);
    otn::OrthogonalTreesNetwork net(n, cost);
    for (auto _ : state) {
        auto r = otn::matMulPipelined(net, a, b);
        benchmark::DoNotOptimize(r.product(0, 0));
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_MatMulPipelined)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_VecMatMul(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto b = randomMatrix(n, 7, 3);
    auto cost = matCost(n);
    otn::OrthogonalTreesNetwork net(n, cost);
    net.loadBase(otn::Reg::B, b);
    auto a = randomValues(n, 4);
    for (auto &x : a)
        x %= 7;
    for (auto _ : state) {
        auto c = otn::vecMatMulOtn(net, a);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_VecMatMul)->Arg(16)->Arg(64);

} // namespace

OT_BENCH_MAIN(printTables)

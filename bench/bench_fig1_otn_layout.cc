/**
 * @file
 * Experiment E5 — Fig. 1 and the Section II-A area claim.
 *
 * Renders the (4 x 4)-OTN layout schematic (the paper's Fig. 1) and
 * sweeps the layout generator to verify area = Theta(N^2 log^2 N)
 * (optimal by Leighton's bound [16]), longest wire = Theta(N log N),
 * and the O(log^2 N) root-to-leaf first-bit latency that drives every
 * primitive's cost.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("E5 / Fig. 1: layout of the (4 x 4)-OTN");
    layout::OtnLayout fig1(4, 4);
    std::printf("%s\n", fig1.asciiArt().c_str());
    std::printf("O = base processor (16), * = internal processor "
                "(2 trees x 4 vectors x 3 IPs = 24)\n");

    section("E5: OTN area scaling (paper: Theta(N^2 log^2 N), optimal)");
    analysis::TextTable t({"N", "pitch", "side", "area", "area/(NlogN)^2",
                           "longest wire", "root path latency"});
    std::vector<double> ns, areas, longest;
    for (std::size_t n : {8, 16, 32, 64, 128, 256, 512}) {
        auto cost = defaultCostModel(n);
        layout::OtnLayout l(n, cost.word().bits());
        auto m = l.metrics();
        double dn = static_cast<double>(n);
        double denom = dn * std::log2(dn);
        ns.push_back(dn);
        areas.push_back(static_cast<double>(m.area()));
        longest.push_back(static_cast<double>(m.longestWire));
        t.addRow({std::to_string(n), std::to_string(l.pitch()),
                  analysis::formatQuantity(static_cast<double>(m.width)),
                  analysis::formatQuantity(static_cast<double>(m.area())),
                  analysis::formatQuantity(
                      static_cast<double>(m.area()) / (denom * denom)),
                  analysis::formatQuantity(
                      static_cast<double>(m.longestWire)),
                  std::to_string(cost.pathLatency(l.tree().pathEdges()))});
    }
    std::printf("%s", t.str().c_str());

    auto fit = analysis::fitPowerLaw(ns, areas);
    std::printf("\narea ~ %s (paper: N^2 up to log^2 factors; "
                "R^2 = %.4f)\n",
                analysis::formatExponent("N", fit.exponent).c_str(),
                fit.r2);
    auto wfit = analysis::fitPowerLaw(ns, longest);
    std::printf("longest wire ~ %s (paper: N log N)\n",
                analysis::formatExponent("N", wfit.exponent).c_str());
}

void
BM_OtnLayoutMetrics(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto cost = ot::defaultCostModel(n);
    for (auto _ : state) {
        layout::OtnLayout l(n, cost.word().bits());
        benchmark::DoNotOptimize(l.metrics().area());
    }
}
BENCHMARK(BM_OtnLayoutMetrics)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_OtnAsciiArt(benchmark::State &state)
{
    for (auto _ : state) {
        layout::OtnLayout l(8, 6);
        auto art = l.asciiArt();
        benchmark::DoNotOptimize(art.data());
    }
}
BENCHMARK(BM_OtnAsciiArt);

} // namespace

OT_BENCH_MAIN(printTables)

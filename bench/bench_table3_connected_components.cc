/**
 * @file
 * Experiment E3 — Table III: connected components of an N-vertex
 * undirected graph (adjacency-matrix representation).
 *
 * Simulated rows: mesh (Boolean closure via Cannon squaring), OTN
 * (HCS CONNECT, O(log^4 N)), OTC (same algorithm on the emulated
 * machine, O(N^2) area).  PSN/CCC rows are analytic (the paper's own
 * figures cite a straightforward implementation of CONNECT [12]).
 *
 * Shape to reproduce: OTN/OTC times grow polylogarithmically while the
 * mesh grows ~N; OTC AT^2 = N^2 log^8 N vs the others' ~N^4.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

const std::vector<std::size_t> kSweep{16, 32, 64, 128};

graph::Graph
workloadGraph(std::size_t n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    // Sparse G(n, p) with expected degree ~2: a mix of components.
    return graph::randomGnp(n, 2.0 / static_cast<double>(n), rng);
}

void
printTables()
{
    section("E3 / Table III: connected components");
    printPaperTable(analysis::Problem::ConnectedComponents,
                    vlsi::DelayModel::Logarithmic,
                    {analysis::Network::Mesh, analysis::Network::Psn,
                     analysis::Network::Ccc, analysis::Network::Otn,
                     analysis::Network::Otc},
                    static_cast<double>(kSweep.back()));

    MeasuredRow mesh{"mesh (closure)", {}, {}, 0};
    MeasuredRow otn_row{"OTN (CONNECT)", {}, {}, 0};
    MeasuredRow otc_row{"OTC (emulated)", {}, {}, 0};
    MeasuredRow otc_nat{"OTC (native)", {}, {}, 0};

    for (std::size_t n : kSweep) {
        auto g = workloadGraph(n, 30 + n);
        auto cost = defaultCostModel(n);
        auto expect = graph::connectedComponents(g);
        double dn = static_cast<double>(n);

        {
            baselines::MeshMachine m(n * n, cost);
            auto r = baselines::meshConnectedComponents(m, g);
            if (r.labels != expect)
                std::abort();
            mesh.ns.push_back(dn);
            mesh.times.push_back(static_cast<double>(r.time));
            mesh.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            otn::OrthogonalTreesNetwork m(n, cost);
            auto r = otn::connectedComponentsOtn(m, g);
            if (r.labels != expect)
                std::abort();
            otn_row.ns.push_back(dn);
            otn_row.times.push_back(static_cast<double>(r.time));
            otn_row.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            auto r = otc::connectedComponentsOtc(g, cost);
            if (r.result.labels != expect)
                std::abort();
            otc_row.ns.push_back(dn);
            otc_row.times.push_back(
                static_cast<double>(r.result.time));
            otc_row.area = static_cast<double>(r.chip.area());
        }
        {
            // The Section VI-B machine driven with the cycle
            // primitives directly (no emulation layer).
            unsigned l = vlsi::logCeilAtLeast1(n);
            otc::OtcNetwork machine(vlsi::ceilDiv(n, l), l, cost);
            auto r = otc::connectedComponentsOtcNative(machine, g);
            if (r.labels != expect)
                std::abort();
            otc_nat.ns.push_back(dn);
            otc_nat.times.push_back(static_cast<double>(r.time));
            otc_nat.area = static_cast<double>(
                machine.chipLayout().metrics().area());
        }
    }

    printMeasured({mesh, otn_row, otc_row, otc_nat});

    std::printf("\nShape checks at N = %zu:\n", kSweep.back());
    std::printf("  mesh time / OTC time = %.2f (paper: N/log^4 N, "
                "grows with N)\n",
                mesh.times.back() / otc_row.times.back());
    std::printf("  OTN time / OTC time  = %.2f (paper: Theta(1))\n",
                otn_row.times.back() / otc_row.times.back());
    std::printf("  OTN area / OTC area  = %.1f (paper: "
                "Theta(log^2 N))\n",
                otn_row.area / otc_row.area);

    // Mesh vs OTC time crossover trend across the sweep.
    std::printf("\n  mesh/OTC time ratio across the sweep:");
    for (std::size_t i = 0; i < kSweep.size(); ++i)
        std::printf(" N=%zu: %.2f", kSweep[i],
                    mesh.times[i] / otc_row.times[i]);
    std::printf("  (must grow — the polylog vs N separation)\n");
}

void
BM_ConnectedComponentsOtn(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto g = workloadGraph(n, 5);
    auto cost = defaultCostModel(n);
    otn::OrthogonalTreesNetwork net(n, cost);
    for (auto _ : state) {
        auto r = otn::connectedComponentsOtn(net, g);
        benchmark::DoNotOptimize(r.labels.data());
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_ConnectedComponentsOtn)->Arg(32)->Arg(64)->Arg(128);

void
BM_ConnectedComponentsMesh(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto g = workloadGraph(n, 5);
    auto cost = defaultCostModel(n);
    baselines::MeshMachine mesh(n * n, cost);
    for (auto _ : state) {
        auto r = baselines::meshConnectedComponents(mesh, g);
        benchmark::DoNotOptimize(r.labels.data());
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_ConnectedComponentsMesh)->Arg(32)->Arg(64);

} // namespace

OT_BENCH_MAIN(printTables)

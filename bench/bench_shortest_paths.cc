/**
 * @file
 * Extension experiment E12 — shortest paths on the OTN via (min, +)
 * products (the Section III machinery applied to the semiring the
 * paper's graph background [12], [26] lives in).
 *
 * Reports Bellman-Ford SSSP (rounds x O(log^2 N)) and APSP by
 * (min, +) squaring (log N pipelined products), both verified against
 * Dijkstra / Floyd-Warshall on every input.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("E12 (extension): shortest paths on the OTN");

    analysis::TextTable t({"N", "edges", "SSSP rounds", "SSSP time",
                           "APSP time", "log^2 N", "N log N"});
    std::vector<double> ns, sssp_times, apsp_times;
    for (std::size_t n : {16, 32, 64, 128}) {
        sim::Rng rng(120 + n);
        auto g = graph::randomWeightedConnected(n, 2 * n, rng);
        vlsi::CostModel cost(vlsi::DelayModel::Logarithmic,
                             otn::pathWordFormat(n, n * n));

        otn::OrthogonalTreesNetwork net(n, cost);
        std::size_t src = rng.uniform(0, n - 1);
        auto sssp = otn::ssspOtn(net, g, src);
        if (sssp.dist != graph::dijkstra(g, src))
            std::abort();

        otn::OrthogonalTreesNetwork net2(n, cost);
        auto apsp = otn::apspOtn(net2, g);
        if (apsp.dist != graph::floydWarshall(g))
            std::abort();

        double dn = static_cast<double>(n);
        double l = std::log2(dn);
        ns.push_back(dn);
        sssp_times.push_back(static_cast<double>(sssp.time));
        apsp_times.push_back(static_cast<double>(apsp.time));
        t.addRow({std::to_string(n),
                  std::to_string(g.skeleton().edgeCount()),
                  std::to_string(sssp.rounds),
                  analysis::formatQuantity(
                      static_cast<double>(sssp.time)),
                  analysis::formatQuantity(
                      static_cast<double>(apsp.time)),
                  analysis::formatQuantity(l * l),
                  analysis::formatQuantity(dn * l)});
    }
    std::printf("%s", t.str().c_str());

    auto sfit = analysis::fitPowerLaw(ns, sssp_times);
    auto afit = analysis::fitPowerLaw(ns, apsp_times);
    std::printf("\nSSSP time ~ %s (diameter x log^2 N rounds); "
                "APSP time ~ %s (log N pipelined products, ~N log^2 N)\n",
                analysis::formatExponent("N", sfit.exponent).c_str(),
                analysis::formatExponent("N", afit.exponent).c_str());
    std::printf("every distance verified against Dijkstra / "
                "Floyd-Warshall.\n");
}

void
BM_SsspOtn(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::Rng rng(3);
    auto g = graph::randomWeightedConnected(n, 2 * n, rng);
    vlsi::CostModel cost(vlsi::DelayModel::Logarithmic,
                         otn::pathWordFormat(n, n * n));
    otn::OrthogonalTreesNetwork net(n, cost);
    for (auto _ : state) {
        auto r = otn::ssspOtn(net, g, 0);
        benchmark::DoNotOptimize(r.dist.data());
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_SsspOtn)->Arg(32)->Arg(64)->Arg(128);

void
BM_ApspOtn(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::Rng rng(3);
    auto g = graph::randomWeightedConnected(n, 2 * n, rng);
    vlsi::CostModel cost(vlsi::DelayModel::Logarithmic,
                         otn::pathWordFormat(n, n * n));
    otn::OrthogonalTreesNetwork net(n, cost);
    for (auto _ : state) {
        auto r = otn::apspOtn(net, g);
        benchmark::DoNotOptimize(r.dist(0, 0));
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_ApspOtn)->Arg(16)->Arg(32)->Arg(64);

} // namespace

OT_BENCH_MAIN(printTables)

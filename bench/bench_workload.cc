/**
 * @file
 * Workload-engine benchmark: the batched multi-instance farm from
 * src/workload, cold versus warm NetworkCache.
 *
 * Prints the demo batch's report (the same mix `otsim batch --demo`
 * runs: both machine families, sizes {16, 32}, delay models
 * {log, const}, all five algorithms), then benchmarks:
 *
 *   - BM_BatchCold: a fresh BatchEngine per iteration, so every
 *     machine shape is constructed from scratch (all misses);
 *   - BM_BatchWarm: one engine across iterations, so after the first
 *     pass every acquire is a cache hit — the delta is the machine
 *     construction cost the cache saves;
 *   - BM_BatchWide: a warm sort-only batch swept over batch size, to
 *     see how host-side farm sharding scales with OT_HOST_THREADS.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("Workload farm: the otsim batch --demo mix");
    workload::BatchEngine engine;
    auto report = engine.run(workload::demoWorkload());
    report.writeText(std::cout);

    auto rerun = engine.run(workload::demoWorkload());
    std::printf("\nWarm rerun: %llu hits / %llu misses "
                "(cold: %llu / %llu); makespan %llu both runs: %s\n",
                static_cast<unsigned long long>(rerun.cacheHits),
                static_cast<unsigned long long>(rerun.cacheMisses),
                static_cast<unsigned long long>(report.cacheHits),
                static_cast<unsigned long long>(report.cacheMisses),
                static_cast<unsigned long long>(rerun.makespan),
                rerun.makespan == report.makespan ? "yes" : "NO");
}

void
BM_BatchCold(benchmark::State &state)
{
    auto spec = workload::demoWorkload();
    for (auto _ : state) {
        workload::BatchEngine engine;
        auto report = engine.run(spec);
        benchmark::DoNotOptimize(report.makespan);
        state.counters["model_makespan"] =
            static_cast<double>(report.makespan);
        state.counters["cache_misses"] =
            static_cast<double>(report.cacheMisses);
    }
}
BENCHMARK(BM_BatchCold);

void
BM_BatchWarm(benchmark::State &state)
{
    auto spec = workload::demoWorkload();
    workload::BatchEngine engine;
    engine.run(spec); // prime the cache
    for (auto _ : state) {
        auto report = engine.run(spec);
        benchmark::DoNotOptimize(report.makespan);
        state.counters["model_makespan"] =
            static_cast<double>(report.makespan);
        state.counters["cache_hits"] =
            static_cast<double>(report.cacheHits);
    }
}
BENCHMARK(BM_BatchWarm);

void
BM_BatchWide(benchmark::State &state)
{
    std::size_t count = static_cast<std::size_t>(state.range(0));
    workload::WorkloadSpec spec;
    for (std::size_t i = 0; i < count; ++i) {
        workload::InstanceSpec inst;
        inst.algo = workload::Algo::Sort;
        // Four shapes, so the farm has four shards to spread.
        inst.net = i % 2 ? "otc" : "otn";
        inst.n = i % 4 < 2 ? 32 : 64;
        inst.seed = i + 1;
        spec.instances.push_back(inst);
    }
    workload::BatchEngine engine;
    engine.run(spec); // prime the cache
    for (auto _ : state) {
        auto report = engine.run(spec);
        benchmark::DoNotOptimize(report.makespan);
        state.counters["model_makespan"] =
            static_cast<double>(report.makespan);
    }
}
BENCHMARK(BM_BatchWide)->Arg(4)->Arg(16)->Arg(64);

} // namespace

OT_BENCH_MAIN(printTables)

/**
 * @file
 * Experiment E4 — Table IV: sorting under the constant-delay VLSI
 * model (Section VII-D).
 *
 * What must reproduce: the mesh is unchanged, PSN/CCC improve to
 * ~log^2 N, the OTN improves to ~log N, and the OTC loses its raison
 * d'etre ("under this new model there is no longer any need for the
 * OTC") — its time no longer beats the OTN while the OTN's area
 * advantage is gone.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

const std::vector<std::size_t> kSweep{64, 128, 256, 512, 1024};

void
printTables()
{
    section("E4 / Table IV: sorting, constant-delay model");
    printPaperTable(analysis::Problem::Sorting, vlsi::DelayModel::Constant,
                    {analysis::Network::Mesh, analysis::Network::Psn,
                     analysis::Network::Ccc, analysis::Network::Otn},
                    static_cast<double>(kSweep.back()));

    MeasuredRow mesh{"mesh", {}, {}, 0};
    MeasuredRow psn{"PSN", {}, {}, 0};
    MeasuredRow ccc{"CCC", {}, {}, 0};
    MeasuredRow otn{"OTN", {}, {}, 0};

    for (std::size_t n : kSweep) {
        auto v = randomValues(n, 4242 + n);
        auto cost = defaultCostModel(n, vlsi::DelayModel::Constant);
        double dn = static_cast<double>(n);

        {
            baselines::MeshMachine m(n, cost);
            auto r = baselines::meshSort(m, v);
            mesh.ns.push_back(dn);
            mesh.times.push_back(static_cast<double>(r.time));
            mesh.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            baselines::PsnMachine m(n, cost);
            auto r = baselines::psnSort(m, v);
            psn.ns.push_back(dn);
            psn.times.push_back(static_cast<double>(r.time));
            psn.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            baselines::CccMachine m(n, cost);
            auto r = baselines::cccSort(m, v);
            ccc.ns.push_back(dn);
            ccc.times.push_back(static_cast<double>(r.time));
            ccc.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            otn::OrthogonalTreesNetwork m(n, cost);
            auto r = otn::sortOtn(m, v);
            otn.ns.push_back(dn);
            otn.times.push_back(static_cast<double>(r.time));
            otn.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
    }

    printMeasured({mesh, psn, ccc, otn});

    // Model sensitivity (Section VII-D): the mesh's wires are
    // Theta(log N) short, so its log/constant ratio is Theta(log log N)
    // — essentially flat in N — while PSN/CCC/OTN wires are
    // Theta(N / log N) long and their ratio grows Theta(log N).  Show
    // the *growth* across two sizes.
    std::printf("\nDelay-model sensitivity "
                "(T_log-delay / T_constant-delay):\n");
    std::printf("  %-5s %10s %10s   expectation\n", "net", "N=256",
                "N=16384");
    auto ratio_at = [&](std::size_t n, auto run) {
        auto v = randomValues(n, 4242 + n);
        double t_log = static_cast<double>(
            run(v, defaultCostModel(n)));
        double t_const = static_cast<double>(
            run(v, defaultCostModel(n, vlsi::DelayModel::Constant)));
        return t_log / t_const;
    };
    auto mesh_run = [](const std::vector<std::uint64_t> &v,
                       const vlsi::CostModel &c) {
        return baselines::meshSort(v, c).time;
    };
    auto psn_run = [](const std::vector<std::uint64_t> &v,
                      const vlsi::CostModel &c) {
        return baselines::psnSort(v, c).time;
    };
    auto ccc_run = [](const std::vector<std::uint64_t> &v,
                      const vlsi::CostModel &c) {
        return baselines::cccSort(v, c).time;
    };
    std::printf("  %-5s %10.2f %10.2f   ~flat (Theta(log log N))\n",
                "mesh", ratio_at(256, mesh_run),
                ratio_at(16384, mesh_run));
    std::printf("  %-5s %10.2f %10.2f   grows (Theta(log N))\n", "PSN",
                ratio_at(256, psn_run), ratio_at(16384, psn_run));
    std::printf("  %-5s %10.2f %10.2f   grows (Theta(log N))\n", "CCC",
                ratio_at(256, ccc_run), ratio_at(16384, ccc_run));
    auto otn_run = [](const std::vector<std::uint64_t> &v,
                      const vlsi::CostModel &c) {
        return otn::sortOtn(v, c).time;
    };
    std::printf("  %-5s %10.2f %10.2f   grows (Theta(log N))\n", "OTN",
                ratio_at(256, otn_run), ratio_at(1024, otn_run));
}

void
BM_SortOtnConstantDelay(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto v = randomValues(n, 7);
    auto cost = defaultCostModel(n, vlsi::DelayModel::Constant);
    otn::OrthogonalTreesNetwork net(n, cost);
    for (auto _ : state) {
        auto r = otn::sortOtn(net, v);
        benchmark::DoNotOptimize(r.sorted.data());
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_SortOtnConstantDelay)->Arg(256)->Arg(1024);

void
BM_SortPsnConstantDelay(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto v = randomValues(n, 7);
    auto cost = defaultCostModel(n, vlsi::DelayModel::Constant);
    baselines::PsnMachine psn(n, cost);
    for (auto _ : state) {
        auto r = baselines::psnSort(psn, v);
        benchmark::DoNotOptimize(r.sorted.data());
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_SortPsnConstantDelay)->Arg(256)->Arg(1024);

} // namespace

OT_BENCH_MAIN(printTables)

/**
 * @file
 * Scenario-engine benchmark: the traffic-model layer from
 * src/scenario, scheduling policy x traffic shape.
 *
 * Prints the smoke scenario's report under all four policies (the
 * same spec `otsim scenario --demo` runs), then benchmarks:
 *
 *   - BM_ScenarioReplay: a warm queue walk (measurements memoized),
 *     swept over the four policies — the cost of *re-scheduling* an
 *     already-measured stream, which is what `--compare` pays per
 *     extra policy;
 *   - BM_ArrivalGen: arrival-sequence generation alone, swept over
 *     the three arrival processes — pure splitmix64 stream work;
 *   - BM_ScenarioCold: a fresh engine per iteration, so every shape
 *     is measured through the BatchEngine first (the full
 *     `otsim scenario` cost).
 */

#include <iostream>

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("Scenario engine: the otsim scenario --demo spec");
    scenario::ScenarioEngine engine;
    scenario::ScenarioSpec spec = scenario::demoScenario();
    for (auto kind :
         {scenario::SchedulerKind::Fifo, scenario::SchedulerKind::Sjf,
          scenario::SchedulerKind::FairShare,
          scenario::SchedulerKind::Edf}) {
        auto report = engine.run(spec, kind);
        report.writeText(std::cout);
    }
}

constexpr scenario::SchedulerKind kPolicies[] = {
    scenario::SchedulerKind::Fifo,
    scenario::SchedulerKind::Sjf,
    scenario::SchedulerKind::FairShare,
    scenario::SchedulerKind::Edf,
};

void
BM_ScenarioReplay(benchmark::State &state)
{
    auto kind = kPolicies[state.range(0)];
    auto spec = scenario::demoScenario();
    scenario::ScenarioEngine engine;
    engine.run(spec, kind); // memoize the measurements
    for (auto _ : state) {
        auto report = engine.run(spec, kind);
        benchmark::DoNotOptimize(report.makespan);
        state.counters["p95_sojourn"] =
            static_cast<double>(report.sojourn.p95);
    }
    state.SetLabel(toString(kind));
}
BENCHMARK(BM_ScenarioReplay)->DenseRange(0, 3);

void
BM_ArrivalGen(benchmark::State &state)
{
    auto spec = scenario::demoScenario();
    spec.arrival.maxArrivals = 4096;
    spec.arrival.duration = 10000000;
    switch (state.range(0)) {
      case 1:
        spec.arrival.kind = scenario::ArrivalKind::Bursty;
        spec.arrival.onMean = 2000;
        spec.arrival.offMean = 1000;
        break;
      case 2:
        spec.arrival.kind = scenario::ArrivalKind::Diurnal;
        spec.arrival.period = 50000;
        spec.arrival.ampPct = 60;
        break;
      default:
        break;
    }
    for (auto _ : state) {
        auto arrivals = scenario::generateArrivals(spec);
        benchmark::DoNotOptimize(arrivals.size());
        state.counters["arrivals"] =
            static_cast<double>(arrivals.size());
    }
    state.SetLabel(toString(spec.arrival.kind));
}
BENCHMARK(BM_ArrivalGen)->DenseRange(0, 2);

void
BM_ScenarioCold(benchmark::State &state)
{
    auto spec = scenario::demoScenario();
    for (auto _ : state) {
        scenario::ScenarioEngine engine;
        auto report = engine.run(spec);
        benchmark::DoNotOptimize(report.makespan);
        state.counters["model_makespan"] =
            static_cast<double>(report.makespan);
    }
}
BENCHMARK(BM_ScenarioCold);

} // namespace

OT_BENCH_MAIN(printTables)

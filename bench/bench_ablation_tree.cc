/**
 * @file
 * Ablation — why *orthogonal* trees?  (Section II-A: "the OTN is a
 * generalization of the tree network which has been studied
 * extensively [2], [3], [7]".)
 *
 * A single tree has bisection width 1: semigroup operations are as
 * fast as on the OTN's trees, but any computation that must exchange
 * Theta(N) distinct words serializes at the root.  This bench sorts
 * the same inputs on the single-tree machine (extract-min), the OTN
 * (SORT-OTN) and the mesh, and prints the time/area trade: the OTN
 * pays Theta(log^2 N) more area per element than the tree machine and
 * buys a Theta(N / polylog) speedup.
 *
 * A second table shows where the single tree is NOT worse: pure
 * reductions (COUNT/SUM/MIN), where both machines take one traversal.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("Ablation: one tree vs orthogonal trees (sorting)");
    analysis::TextTable t({"N", "tree time", "OTN time", "speedup",
                           "tree area", "OTN area", "area cost"});
    std::vector<double> ns, speedups;
    for (std::size_t n : {64, 128, 256, 512, 1024}) {
        auto v = randomValues(n, 90 + n);
        auto cost = defaultCostModel(n);

        baselines::TreeMachine tree(n, cost);
        auto sorted = tree.extractMinSort(v);
        auto expect = v;
        std::sort(expect.begin(), expect.end());
        if (sorted != expect)
            std::abort();
        double t_tree = static_cast<double>(tree.now());

        otn::OrthogonalTreesNetwork net(n, cost);
        auto r = otn::sortOtn(net, v);
        if (r.sorted != expect)
            std::abort();
        double t_otn = static_cast<double>(r.time);

        double a_tree = static_cast<double>(tree.chipArea());
        double a_otn =
            static_cast<double>(net.chipLayout().metrics().area());

        ns.push_back(static_cast<double>(n));
        speedups.push_back(t_tree / t_otn);
        t.addRow({std::to_string(n), analysis::formatQuantity(t_tree),
                  analysis::formatQuantity(t_otn),
                  analysis::formatRatio(t_tree / t_otn),
                  analysis::formatQuantity(a_tree),
                  analysis::formatQuantity(a_otn),
                  analysis::formatRatio(a_otn / a_tree)});
    }
    std::printf("%s", t.str().c_str());

    auto fit = analysis::fitPowerLaw(ns, speedups);
    std::printf("\nspeedup grows ~ %s (one tree serializes Theta(N) "
                "words at its root; the OTN's 2N trees do not)\n",
                analysis::formatExponent("N", fit.exponent).c_str());

    section("Ablation: where one tree is enough (semigroup reductions)");
    analysis::TextTable t2({"N", "tree MIN-reduce", "OTN MIN-LEAFTOROOT",
                            "ratio"});
    for (std::size_t n : {64, 256, 1024}) {
        auto cost = defaultCostModel(n);
        baselines::TreeMachine tree(n, cost);
        vlsi::ModelTime dt_tree = 0;
        tree.minReduce(&dt_tree);
        otn::OrthogonalTreesNetwork net(n, cost);
        double dt_otn = static_cast<double>(net.treeReduceCost());
        t2.addRow({std::to_string(n),
                   analysis::formatQuantity(static_cast<double>(dt_tree)),
                   analysis::formatQuantity(dt_otn),
                   analysis::formatRatio(static_cast<double>(dt_tree) /
                                         dt_otn)});
    }
    std::printf("%s", t2.str().c_str());
    std::printf("\n(both are one combining traversal — the OTN's "
                "advantage is parallel *capacity*, not tree speed)\n");
}

void
BM_TreeMachineExtractMinSort(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto v = randomValues(n, 3);
    auto cost = ot::defaultCostModel(n);
    baselines::TreeMachine tree(n, cost);
    for (auto _ : state) {
        auto sorted = tree.extractMinSort(v);
        benchmark::DoNotOptimize(sorted.data());
    }
}
BENCHMARK(BM_TreeMachineExtractMinSort)->Arg(256)->Arg(1024);

} // namespace

OT_BENCH_MAIN(printTables)

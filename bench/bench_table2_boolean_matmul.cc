/**
 * @file
 * Experiment E2 — Table II: Boolean matrix multiplication.
 *
 * Simulated rows: mesh (Cannon, O(N) time), OTN pipelined (Section
 * III-A, O(N) with unit separation), OTN/OTC replicated-block machines
 * (the Table II O(log^2 N) rows).  PSN/CCC rows are analytic only —
 * the paper's own figures for them are citations of the classical
 * N^3-processor construction [10], [23], which is not simulable at
 * any instructive scale (documented substitution, DESIGN.md).
 *
 * Shape to reproduce: OTN/OTC match the fast networks' O(log^2 N) time
 * while their AT^2 (N^4 log^2 N for the OTC) beats the PSN/CCC's ~N^6
 * by a factor that grows like N^2.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

const std::vector<std::size_t> kSweep{8, 16, 32, 64};

linalg::BoolMatrix
randomBool(std::size_t n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    linalg::BoolMatrix m(n, n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.bernoulli(0.35) ? 1 : 0;
    return m;
}

void
printTables()
{
    section("E2 / Table II: Boolean matrix multiplication");
    printPaperTable(analysis::Problem::BoolMatMul,
                    vlsi::DelayModel::Logarithmic,
                    {analysis::Network::Mesh, analysis::Network::Psn,
                     analysis::Network::Ccc, analysis::Network::Otn,
                     analysis::Network::Otc},
                    static_cast<double>(kSweep.back()));

    MeasuredRow mesh{"mesh (Cannon)", {}, {}, 0};
    MeasuredRow otn_pipe{"OTN pipelined", {}, {}, 0};
    MeasuredRow otn_rep{"OTN replicated", {}, {}, 0};
    MeasuredRow otc_rep{"OTC (Sec VI-B)", {}, {}, 0};
    MeasuredRow mot3d{"3D mesh of trees", {}, {}, 0};
    MeasuredRow hex{"hex array [15]", {}, {}, 0};

    for (std::size_t n : kSweep) {
        auto a = randomBool(n, 10 + n);
        auto b = randomBool(n, 20 + n);
        auto cost = defaultCostModel(n);
        double dn = static_cast<double>(n);

        // Verify all engines against the sequential reference once.
        auto expect = linalg::boolMatMul(a, b);

        {
            baselines::MeshMachine m(n * n, cost);
            auto r = baselines::meshBoolMatMul(m, a, b);
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    if ((r.product(i, j) != 0) != (expect(i, j) != 0))
                        std::abort();
            mesh.ns.push_back(dn);
            mesh.times.push_back(static_cast<double>(r.time));
            mesh.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            otn::OrthogonalTreesNetwork m(n, cost);
            auto r = otn::boolMatMulPipelined(m, a, b);
            otn_pipe.ns.push_back(dn);
            otn_pipe.times.push_back(static_cast<double>(r.time));
            otn_pipe.area =
                static_cast<double>(m.chipLayout().metrics().area());
        }
        {
            // Time from the replicated-block run; area is the paper's
            // (N^2 x N^2)-OTN: K^2 log^2 K with K = N^2.
            otn::OrthogonalTreesNetwork block(n, cost);
            auto r = otn::boolMatMulReplicated(block, a, b);
            otn_rep.ns.push_back(dn);
            otn_rep.times.push_back(static_cast<double>(r.time));
            layout::OtnLayout big(n * n,
                                  cost.word().bits());
            otn_rep.area = static_cast<double>(big.metrics().area());
        }
        {
            auto r = otc::boolMatMulOtc(a, b, cost);
            otc_rep.ns.push_back(dn);
            otc_rep.times.push_back(static_cast<double>(r.result.time));
            otc_rep.area = static_cast<double>(r.chip.area());
        }
        {
            // Section VII-B: Leighton's 3D mesh of trees — area
            // Theta(N^4), polylog time, AT^2 = O(N^4 log^2 N).
            otn::MeshOfTrees3d m(n, cost);
            auto r = m.boolMatMul(a, b);
            mot3d.ns.push_back(dn);
            mot3d.times.push_back(static_cast<double>(r.time));
            mot3d.area = static_cast<double>(m.chipArea());
        }
        {
            // The other low-area baseline the paper's Section I
            // cites: the hexagonal systolic array [15].
            baselines::HexArray hx(n, cost);
            auto t0 = hx.now();
            auto c = hx.boolMatMul(a, b);
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    if ((c(i, j) != 0) != (expect(i, j) != 0))
                        std::abort();
            hex.ns.push_back(dn);
            hex.times.push_back(static_cast<double>(hx.now() - t0));
            hex.area = static_cast<double>(hx.chipArea());
        }
    }

    printMeasured({mesh, otn_pipe, otn_rep, otc_rep, mot3d, hex});

    std::printf("\nShape checks at N = %zu:\n", kSweep.back());
    double l = std::log2(static_cast<double>(kSweep.back()));
    std::printf("  mesh time / OTC time   = %.1f (paper: N/log^2 N = "
                "%.1f-ish)\n",
                mesh.times.back() / otc_rep.times.back(),
                static_cast<double>(kSweep.back()) / (l * l));
    std::printf("  OTN-rep area / OTC area = %.1f (paper: log^4 N = "
                "%.0f-ish)\n",
                otn_rep.area / otc_rep.area, std::pow(l, 4.0));

    // The headline AT^2 factor vs the analytic PSN/CCC rows.  A single
    // ratio mixes our measured constants with the formulas' constants
    // = 1, so report the *trend* across the sweep — the paper says it
    // grows like N^2 / log^4 N.
    std::printf("  PSN AT^2 (analytic) / OTC AT^2 (measured) across the "
                "sweep:");
    std::vector<double> ratio_ns, ratios;
    for (std::size_t i = 0; i < kSweep.size(); ++i) {
        double dn = static_cast<double>(kSweep[i]);
        auto psn = analysis::paperFormula(analysis::Network::Psn,
                                          analysis::Problem::BoolMatMul,
                                          vlsi::DelayModel::Logarithmic,
                                          dn);
        double otc_at2 =
            otc_rep.area * otc_rep.times[i] * otc_rep.times[i];
        // Use each N's own OTC chip area.
        unsigned l = vlsi::logCeilAtLeast1(kSweep[i]);
        layout::OtcLayout chip(
            vlsi::ceilDiv(kSweep[i] * kSweep[i], l * l), l * l, 1, true);
        otc_at2 = static_cast<double>(chip.metrics().area()) *
                  otc_rep.times[i] * otc_rep.times[i];
        ratio_ns.push_back(dn);
        ratios.push_back(psn.at2() / otc_at2);
        std::printf(" N=%zu: %s", kSweep[i],
                    analysis::formatRatio(ratios.back()).c_str());
    }
    auto rfit = analysis::fitPowerLaw(ratio_ns, ratios);
    std::printf("\n  ratio grows ~ %s (paper: ~N^2/polylog)\n",
                analysis::formatExponent("N", rfit.exponent).c_str());
}

void
BM_BoolMatMulOtcReplicated(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto a = randomBool(n, 1);
    auto b = randomBool(n, 2);
    auto cost = defaultCostModel(n);
    for (auto _ : state) {
        auto r = otc::boolMatMulOtc(a, b, cost);
        benchmark::DoNotOptimize(r.result.product(0, 0));
        state.counters["model_time"] =
            static_cast<double>(r.result.time);
    }
}
BENCHMARK(BM_BoolMatMulOtcReplicated)->Arg(16)->Arg(32)->Arg(64);

void
BM_BoolMatMulMeshCannon(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    auto a = randomBool(n, 1);
    auto b = randomBool(n, 2);
    auto cost = defaultCostModel(n);
    baselines::MeshMachine mesh(n * n, cost);
    for (auto _ : state) {
        auto r = baselines::meshBoolMatMul(mesh, a, b);
        benchmark::DoNotOptimize(r.product(0, 0));
        state.counters["model_time"] = static_cast<double>(r.time);
    }
}
BENCHMARK(BM_BoolMatMulMeshCannon)->Arg(16)->Arg(32)->Arg(64);

} // namespace

OT_BENCH_MAIN(printTables)

/**
 * @file
 * Experiment E6 — Figs. 2-3 and the Section V-A area claim.
 *
 * Renders one OTC cycle (Fig. 2) and the (4 x 4)-OTC (Fig. 3, N = 16,
 * log N = 4 in the paper), then sweeps the layout to verify the OTC's
 * area = Theta(N^2) — a Theta(log^2 N) saving over the OTN for the
 * same problem size — and the Section VI-B compact Boolean variant.
 */

#include "bench_common.hh"

namespace {

using namespace ot;
using namespace ot::bench;

void
printTables()
{
    section("E6 / Fig. 2: layout of one OTC cycle (L = 4)");
    layout::OtcLayout fig2(4, 4, 8);
    std::printf("%s\n", fig2.cycleAsciiArt().c_str());
    std::printf("[BP] = cycle processor, T = row/column tree taps at "
                "BP(0), | = cycle wires (right = wrap-around)\n");

    section("E6 / Fig. 3: layout of the (4 x 4)-OTC (N = 16, log N = 4)");
    std::printf("%s\n", fig2.asciiArt().c_str());
    std::printf("(C) = cycle of 4 BPs, * = internal (tree) processor\n");

    section("E6: OTC area scaling (paper: Theta(N^2))");
    analysis::TextTable t({"N", "K=N/logN", "L=logN", "OTC area",
                           "area/N^2", "OTN area", "OTN/OTC"});
    std::vector<double> ns, areas;
    for (std::size_t n : {64, 256, 1024, 4096, 16384}) {
        unsigned l = vlsi::logCeilAtLeast1(n);
        auto cost = defaultCostModel(n);
        layout::OtcLayout otcl(n / l, l, cost.word().bits());
        layout::OtnLayout otnl(n, cost.word().bits());
        double a_otc = static_cast<double>(otcl.metrics().area());
        double a_otn = static_cast<double>(otnl.metrics().area());
        double dn = static_cast<double>(n);
        ns.push_back(dn);
        areas.push_back(a_otc);
        t.addRow({std::to_string(n), std::to_string(n / l),
                  std::to_string(l), analysis::formatQuantity(a_otc),
                  analysis::formatQuantity(a_otc / (dn * dn)),
                  analysis::formatQuantity(a_otn),
                  analysis::formatRatio(a_otn / a_otc)});
    }
    std::printf("%s", t.str().c_str());

    auto fit = analysis::fitPowerLaw(ns, areas);
    std::printf("\nOTC area ~ %s (paper: N^2; R^2 = %.4f)\n",
                analysis::formatExponent("N", fit.exponent).c_str(),
                fit.r2);

    section("E6: Section VI-B compact Boolean cycles (L = log^2 N)");
    analysis::TextTable t2({"N", "cycle len", "cycle block side",
                            "chip area"});
    for (std::size_t n : {64, 256, 1024}) {
        unsigned l = vlsi::logCeilAtLeast1(n);
        layout::OtcLayout compact(vlsi::ceilDiv(n * n, l * l), l * l, 1,
                                  /*compact_bps=*/true);
        t2.addRow({std::to_string(n), std::to_string(l * l),
                   std::to_string(compact.cycleSide()),
                   analysis::formatQuantity(static_cast<double>(
                       compact.metrics().area()))});
    }
    std::printf("%s", t2.str().c_str());
}

void
BM_OtcLayoutMetrics(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    unsigned l = vlsi::logCeilAtLeast1(n);
    auto cost = ot::defaultCostModel(n);
    for (auto _ : state) {
        layout::OtcLayout lay(n / l, l, cost.word().bits());
        benchmark::DoNotOptimize(lay.metrics().area());
    }
}
BENCHMARK(BM_OtcLayoutMetrics)->Arg(1024)->Arg(16384);

} // namespace

OT_BENCH_MAIN(printTables)
